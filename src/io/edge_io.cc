#include "src/io/edge_io.h"

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "src/io/text_parse.h"
#include "src/util/parallel.h"

namespace egraph {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using UniqueFile = std::unique_ptr<std::FILE, FileCloser>;

UniqueFile OpenOrThrow(const std::string& path, const char* mode) {
  UniqueFile file(std::fopen(path.c_str(), mode));
  if (file == nullptr) {
    throw std::runtime_error("cannot open " + path);
  }
  return file;
}

void WriteOrThrow(std::FILE* f, const void* data, size_t bytes, const std::string& path) {
  if (bytes != 0 && std::fwrite(data, 1, bytes, f) != bytes) {
    throw std::runtime_error("short write to " + path);
  }
}

void ReadOrThrow(std::FILE* f, void* data, size_t bytes, const std::string& path) {
  if (bytes != 0 && std::fread(data, 1, bytes, f) != bytes) {
    throw std::runtime_error("truncated read from " + path);
  }
}

}  // namespace

void WriteBinaryEdges(const std::string& path, const EdgeList& graph) {
  UniqueFile file = OpenOrThrow(path, "wb");
  EdgeFileHeader header;
  header.num_vertices = graph.num_vertices();
  header.flags = graph.has_weights() ? 1u : 0u;
  header.num_edges = graph.num_edges();
  WriteOrThrow(file.get(), &header, sizeof(header), path);
  WriteOrThrow(file.get(), graph.edges().data(), graph.edges().size() * sizeof(Edge), path);
  if (graph.has_weights()) {
    WriteOrThrow(file.get(), graph.weights().data(), graph.weights().size() * sizeof(float),
                 path);
  }
}

EdgeFileHeader ReadEdgeFileHeader(const std::string& path) {
  UniqueFile file = OpenOrThrow(path, "rb");
  EdgeFileHeader header;
  ReadOrThrow(file.get(), &header, sizeof(header), path);
  if (header.magic != kEdgeFileMagic) {
    throw std::runtime_error("bad magic in " + path);
  }
  return header;
}

EdgeList ReadBinaryEdges(const std::string& path) {
  UniqueFile file = OpenOrThrow(path, "rb");
  EdgeFileHeader header;
  ReadOrThrow(file.get(), &header, sizeof(header), path);
  if (header.magic != kEdgeFileMagic) {
    throw std::runtime_error("bad magic in " + path);
  }
  // Check the declared sections against the physical size before sizing
  // buffers, so a corrupt edge count fails cleanly instead of OOMing.
  if (std::fseek(file.get(), 0, SEEK_END) != 0) {
    throw std::runtime_error("seek failed on " + path);
  }
  const uint64_t file_bytes = static_cast<uint64_t>(std::ftell(file.get()));
  ValidateEdgeFileSize(header, file_bytes, path);
  std::fseek(file.get(), sizeof(EdgeFileHeader), SEEK_SET);
  EdgeList graph;
  graph.set_num_vertices(header.num_vertices);
  graph.mutable_edges().resize(header.num_edges);
  ReadOrThrow(file.get(), graph.mutable_edges().data(), header.num_edges * sizeof(Edge), path);
  if (header.has_weights()) {
    graph.mutable_weights().resize(header.num_edges);
    ReadOrThrow(file.get(), graph.mutable_weights().data(), header.num_edges * sizeof(float),
                path);
  }
  ValidateEdgeChunk(graph.edges(), header.num_vertices, path);
  return graph;
}

void ValidateEdgeChunk(std::span<const Edge> edges, VertexId num_vertices,
                       const std::string& path) {
  const VertexId max_endpoint = ParallelReduceMax<VertexId>(
      0, static_cast<int64_t>(edges.size()), 0, [&edges](int64_t i) {
        const Edge& e = edges[static_cast<size_t>(i)];
        return e.src > e.dst ? e.src : e.dst;
      });
  if (!edges.empty() && max_endpoint >= num_vertices) {
    throw std::runtime_error("edge endpoint out of range in " + path);
  }
}

void ValidateEdgeFileSize(const EdgeFileHeader& header, uint64_t file_bytes,
                          const std::string& path) {
  // Per-edge cost: 8 bytes, plus 4 for the weight when present. Overflow
  // guard first: a garbage num_edges must not wrap the product.
  const uint64_t per_edge = sizeof(Edge) + (header.has_weights() ? sizeof(float) : 0);
  const uint64_t payload_budget = UINT64_MAX - sizeof(EdgeFileHeader);
  if (header.num_edges > payload_budget / per_edge ||
      sizeof(EdgeFileHeader) + header.num_edges * per_edge > file_bytes) {
    throw std::runtime_error("truncated edge file: " + path);
  }
}

void WriteTextEdges(const std::string& path, const EdgeList& graph) {
  UniqueFile file = OpenOrThrow(path, "w");
  std::fprintf(file.get(), "# vertices %u\n", graph.num_vertices());
  for (size_t i = 0; i < graph.edges().size(); ++i) {
    const Edge& e = graph.edges()[i];
    if (graph.has_weights()) {
      std::fprintf(file.get(), "%u %u %.6g\n", e.src, e.dst, graph.weights()[i]);
    } else {
      std::fprintf(file.get(), "%u %u\n", e.src, e.dst);
    }
  }
}

namespace {

// Per-shard output of the parallel text parse. Shards are concatenated in
// order, so the resulting edge order matches the sequential reader's.
struct TextShard {
  std::vector<Edge> edges;
  std::vector<float> weights;
  bool any_weighted = false;
  bool any_unweighted = false;
  bool has_declared = false;
  VertexId declared_vertices = 0;
  std::string error;  // first malformed line, if any
};

// Parses one newline-aligned shard of "src dst [weight]" lines. Lines may
// be arbitrarily long (no fgets buffer to split them); ids are strict
// unsigned (no silent negative wraparound); trailing junk is an error.
void ParseTextShard(std::string_view shard, const std::string& path, TextShard& out) {
  const char* cursor = shard.data();
  const char* const end = cursor + shard.size();
  while (cursor != end) {
    const std::string_view line = text::NextLine(cursor, end);
    const char* p = line.data();
    const char* const le = p + line.size();
    p = text::SkipSpace(p, le);
    if (p == le) {
      continue;
    }
    if (*p == '#') {
      // Recognize the "# vertices N" directive; other comments are skipped.
      const char* q = text::SkipSpace(p + 1, le);
      const std::string_view keyword("vertices");
      if (static_cast<size_t>(le - q) > keyword.size() &&
          std::string_view(q, keyword.size()) == keyword) {
        q += keyword.size();
        VertexId declared = 0;
        if (text::ParseUnsigned(q, le, declared) && text::AtLineEnd(q, le)) {
          out.declared_vertices = declared;
          out.has_declared = true;
        }
      }
      continue;
    }
    VertexId src = 0;
    VertexId dst = 0;
    if (!text::ParseUnsigned(p, le, src) || !text::ParseUnsigned(p, le, dst)) {
      out.error = "unparsable line in " + path + ": " + std::string(line);
      return;
    }
    if (text::AtLineEnd(p, le)) {
      out.any_unweighted = true;
      out.edges.push_back({src, dst});
      continue;
    }
    double weight = 0.0;
    if (!text::ParseDouble(p, le, weight) || !text::AtLineEnd(p, le)) {
      out.error = "unparsable line in " + path + ": " + std::string(line);
      return;
    }
    out.any_weighted = true;
    out.edges.push_back({src, dst});
    out.weights.push_back(static_cast<float>(weight));
  }
}

}  // namespace

EdgeList ReadTextEdges(const std::string& path) {
  const std::string content = ReadWholeFile(path);
  std::vector<TextShard> shards(static_cast<size_t>(ThreadPool::Current().num_threads()));
  const size_t used = ParallelLineShards(
      content, /*min_shard_bytes=*/64u << 10,
      [&](size_t index, std::string_view text) { ParseTextShard(text, path, shards[index]); });
  shards.resize(used);

  bool any_weighted = false;
  bool any_unweighted = false;
  size_t total_edges = 0;
  for (const TextShard& shard : shards) {
    if (!shard.error.empty()) {
      throw std::runtime_error(shard.error);
    }
    any_weighted = any_weighted || shard.any_weighted;
    any_unweighted = any_unweighted || shard.any_unweighted;
    total_edges += shard.edges.size();
  }
  if (any_weighted && any_unweighted) {
    throw std::runtime_error("mixed weighted/unweighted lines in " + path);
  }

  EdgeList graph;
  graph.Reserve(total_edges);
  if (any_weighted) {
    graph.mutable_weights().reserve(total_edges);
  }
  for (TextShard& shard : shards) {
    graph.mutable_edges().insert(graph.mutable_edges().end(), shard.edges.begin(),
                                 shard.edges.end());
    if (any_weighted) {
      graph.mutable_weights().insert(graph.mutable_weights().end(), shard.weights.begin(),
                                     shard.weights.end());
    }
    // The sequential reader honored the last "# vertices" directive seen.
    if (shard.has_declared) {
      graph.set_num_vertices(shard.declared_vertices);
    }
  }
  graph.RecomputeNumVertices();
  return graph;
}

}  // namespace egraph
