#include "src/io/edge_io.h"

#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace egraph {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using UniqueFile = std::unique_ptr<std::FILE, FileCloser>;

UniqueFile OpenOrThrow(const std::string& path, const char* mode) {
  UniqueFile file(std::fopen(path.c_str(), mode));
  if (file == nullptr) {
    throw std::runtime_error("cannot open " + path);
  }
  return file;
}

void WriteOrThrow(std::FILE* f, const void* data, size_t bytes, const std::string& path) {
  if (bytes != 0 && std::fwrite(data, 1, bytes, f) != bytes) {
    throw std::runtime_error("short write to " + path);
  }
}

void ReadOrThrow(std::FILE* f, void* data, size_t bytes, const std::string& path) {
  if (bytes != 0 && std::fread(data, 1, bytes, f) != bytes) {
    throw std::runtime_error("truncated read from " + path);
  }
}

}  // namespace

void WriteBinaryEdges(const std::string& path, const EdgeList& graph) {
  UniqueFile file = OpenOrThrow(path, "wb");
  EdgeFileHeader header;
  header.num_vertices = graph.num_vertices();
  header.flags = graph.has_weights() ? 1u : 0u;
  header.num_edges = graph.num_edges();
  WriteOrThrow(file.get(), &header, sizeof(header), path);
  WriteOrThrow(file.get(), graph.edges().data(), graph.edges().size() * sizeof(Edge), path);
  if (graph.has_weights()) {
    WriteOrThrow(file.get(), graph.weights().data(), graph.weights().size() * sizeof(float),
                 path);
  }
}

EdgeFileHeader ReadEdgeFileHeader(const std::string& path) {
  UniqueFile file = OpenOrThrow(path, "rb");
  EdgeFileHeader header;
  ReadOrThrow(file.get(), &header, sizeof(header), path);
  if (header.magic != kEdgeFileMagic) {
    throw std::runtime_error("bad magic in " + path);
  }
  return header;
}

EdgeList ReadBinaryEdges(const std::string& path) {
  UniqueFile file = OpenOrThrow(path, "rb");
  EdgeFileHeader header;
  ReadOrThrow(file.get(), &header, sizeof(header), path);
  if (header.magic != kEdgeFileMagic) {
    throw std::runtime_error("bad magic in " + path);
  }
  EdgeList graph;
  graph.set_num_vertices(header.num_vertices);
  graph.mutable_edges().resize(header.num_edges);
  ReadOrThrow(file.get(), graph.mutable_edges().data(), header.num_edges * sizeof(Edge), path);
  if (header.has_weights()) {
    graph.mutable_weights().resize(header.num_edges);
    ReadOrThrow(file.get(), graph.mutable_weights().data(), header.num_edges * sizeof(float),
                path);
  }
  // Validate endpoints against the declared vertex count.
  for (const Edge& e : graph.edges()) {
    if (e.src >= header.num_vertices || e.dst >= header.num_vertices) {
      throw std::runtime_error("edge endpoint out of range in " + path);
    }
  }
  return graph;
}

void WriteTextEdges(const std::string& path, const EdgeList& graph) {
  UniqueFile file = OpenOrThrow(path, "w");
  std::fprintf(file.get(), "# vertices %u\n", graph.num_vertices());
  for (size_t i = 0; i < graph.edges().size(); ++i) {
    const Edge& e = graph.edges()[i];
    if (graph.has_weights()) {
      std::fprintf(file.get(), "%u %u %.6g\n", e.src, e.dst, graph.weights()[i]);
    } else {
      std::fprintf(file.get(), "%u %u\n", e.src, e.dst);
    }
  }
}

EdgeList ReadTextEdges(const std::string& path) {
  UniqueFile file = OpenOrThrow(path, "r");
  EdgeList graph;
  char line[256];
  bool any_weight = false;
  while (std::fgets(line, sizeof(line), file.get()) != nullptr) {
    if (line[0] == '#') {
      unsigned declared = 0;
      if (std::sscanf(line, "# vertices %u", &declared) == 1) {
        graph.set_num_vertices(declared);
      }
      continue;
    }
    unsigned src = 0;
    unsigned dst = 0;
    float weight = 0.0f;
    const int fields = std::sscanf(line, "%u %u %f", &src, &dst, &weight);
    if (fields < 2) {
      std::ostringstream message;
      message << "unparsable line in " << path << ": " << line;
      throw std::runtime_error(message.str());
    }
    if (fields == 3) {
      if (!any_weight && graph.num_edges() > 0) {
        throw std::runtime_error("mixed weighted/unweighted lines in " + path);
      }
      any_weight = true;
      graph.AddWeightedEdge(src, dst, weight);
    } else {
      if (any_weight) {
        throw std::runtime_error("mixed weighted/unweighted lines in " + path);
      }
      graph.AddEdge(src, dst);
    }
  }
  graph.RecomputeNumVertices();
  return graph;
}

}  // namespace egraph
