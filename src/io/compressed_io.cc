#include "src/io/compressed_io.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/obs/metrics.h"
#include "src/util/parallel.h"

namespace egraph {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using UniqueFile = std::unique_ptr<std::FILE, FileCloser>;

UniqueFile OpenOrThrow(const std::string& path, const char* mode) {
  UniqueFile file(std::fopen(path.c_str(), mode));
  if (file == nullptr) {
    throw std::runtime_error("cannot open " + path);
  }
  return file;
}

void WriteOrThrow(std::FILE* f, const void* data, size_t bytes, const std::string& path) {
  if (bytes != 0 && std::fwrite(data, 1, bytes, f) != bytes) {
    throw std::runtime_error("short write to " + path);
  }
}

void ReadOrThrow(std::FILE* f, void* data, size_t bytes, const std::string& path) {
  if (bytes != 0 && std::fread(data, 1, bytes, f) != bytes) {
    throw std::runtime_error("truncated read from " + path);
  }
}

void SeekOrThrow(std::FILE* f, uint64_t offset, const std::string& path) {
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    throw std::runtime_error("seek failed on " + path);
  }
}

// Byte size of the fixed tables between the header and the varint stream.
// Overflow-checked: any intermediate that would wrap throws.
uint64_t TableBytesOrThrow(const CompressedFileHeader& header, const std::string& path) {
  const uint64_t n = header.num_vertices;
  const uint64_t c = header.num_chunks;
  // The chunk index space is u32 (the per-vertex table is u32), so an
  // absurd chunk count is rejected before any size arithmetic.
  if (c > UINT32_MAX) {
    throw std::runtime_error("absurd chunk count in " + path);
  }
  return n * sizeof(uint32_t) + (n + 1) * sizeof(uint32_t) +
         (c + 1) * sizeof(uint64_t);
}

}  // namespace

void ValidateCompressedFileSize(const CompressedFileHeader& header, uint64_t file_bytes,
                                const std::string& path) {
  if (header.magic != kCompressedFileMagic) {
    throw std::runtime_error("bad magic in " + path);
  }
  if (header.chunk_edges == 0 && header.num_edges != 0) {
    throw std::runtime_error("zero chunk_edges with nonzero edges in " + path);
  }
  const uint64_t table_bytes = TableBytesOrThrow(header, path);
  const uint64_t budget = UINT64_MAX - sizeof(CompressedFileHeader);
  if (table_bytes > budget || header.stream_bytes > budget - table_bytes ||
      sizeof(CompressedFileHeader) + table_bytes + header.stream_bytes > file_bytes) {
    throw std::runtime_error("truncated compressed graph file: " + path);
  }
}

void WriteCompressedCsr(const std::string& path, const CompressedCsr& compressed) {
  UniqueFile file = OpenOrThrow(path, "wb");
  CompressedFileHeader header;
  header.num_vertices = compressed.num_vertices();
  header.flags = compressed.has_weights() ? 1u : 0u;
  header.num_edges = compressed.num_edges();
  header.num_chunks = static_cast<uint64_t>(compressed.num_chunks());
  header.chunk_edges = compressed.chunk_edges();
  header.stream_bytes = compressed.stream_bytes().size();
  WriteOrThrow(file.get(), &header, sizeof(header), path);
  WriteOrThrow(file.get(), compressed.degrees().data(),
               compressed.degrees().size() * sizeof(uint32_t), path);
  WriteOrThrow(file.get(), compressed.chunk_begin().data(),
               compressed.chunk_begin().size() * sizeof(uint32_t), path);
  WriteOrThrow(file.get(), compressed.chunk_bytes().data(),
               compressed.chunk_bytes().size() * sizeof(uint64_t), path);
  WriteOrThrow(file.get(), compressed.stream_bytes().data(),
               compressed.stream_bytes().size(), path);
}

CompressedFileHeader ReadCompressedFileHeader(const std::string& path) {
  UniqueFile file = OpenOrThrow(path, "rb");
  CompressedFileHeader header;
  ReadOrThrow(file.get(), &header, sizeof(header), path);
  if (header.magic != kCompressedFileMagic) {
    throw std::runtime_error("bad magic in " + path);
  }
  return header;
}

CompressedCsr ReadCompressedCsr(const std::string& path) {
  UniqueFile file = OpenOrThrow(path, "rb");
  CompressedFileHeader header;
  ReadOrThrow(file.get(), &header, sizeof(header), path);
  if (std::fseek(file.get(), 0, SEEK_END) != 0) {
    throw std::runtime_error("seek failed on " + path);
  }
  const uint64_t file_bytes = static_cast<uint64_t>(std::ftell(file.get()));
  ValidateCompressedFileSize(header, file_bytes, path);
  SeekOrThrow(file.get(), sizeof(CompressedFileHeader), path);

  const size_t n = header.num_vertices;
  const size_t c = static_cast<size_t>(header.num_chunks);
  std::vector<uint32_t> degrees(n);
  std::vector<uint32_t> chunk_begin(n + 1);
  std::vector<uint64_t> chunk_bytes(c + 1);
  std::vector<uint8_t> stream(header.stream_bytes);
  ReadOrThrow(file.get(), degrees.data(), degrees.size() * sizeof(uint32_t), path);
  ReadOrThrow(file.get(), chunk_begin.data(), chunk_begin.size() * sizeof(uint32_t), path);
  ReadOrThrow(file.get(), chunk_bytes.data(), chunk_bytes.size() * sizeof(uint64_t), path);
  ReadOrThrow(file.get(), stream.data(), stream.size(), path);

  CompressedCsr compressed;
  compressed.Init(header.num_vertices, header.num_edges, header.has_weights(),
                  header.chunk_edges, std::move(degrees), std::move(chunk_begin),
                  std::move(chunk_bytes), std::move(stream));
  std::string error;
  if (!compressed.Validate(&error)) {
    throw std::runtime_error("corrupt compressed graph in " + path + ": " + error);
  }
  return compressed;
}

SelectiveCompressedLoader::SelectiveCompressedLoader(const std::string& path)
    : path_(path) {
  UniqueFile file = OpenOrThrow(path, "rb");
  ReadOrThrow(file.get(), &header_, sizeof(header_), path);
  if (std::fseek(file.get(), 0, SEEK_END) != 0) {
    throw std::runtime_error("seek failed on " + path);
  }
  const uint64_t file_bytes = static_cast<uint64_t>(std::ftell(file.get()));
  ValidateCompressedFileSize(header_, file_bytes, path);
  SeekOrThrow(file.get(), sizeof(CompressedFileHeader), path);

  const size_t n = header_.num_vertices;
  const size_t c = static_cast<size_t>(header_.num_chunks);
  degrees_.resize(n);
  chunk_begin_.resize(n + 1);
  chunk_bytes_.resize(c + 1);
  ReadOrThrow(file.get(), degrees_.data(), degrees_.size() * sizeof(uint32_t), path);
  ReadOrThrow(file.get(), chunk_begin_.data(), chunk_begin_.size() * sizeof(uint32_t),
              path);
  ReadOrThrow(file.get(), chunk_bytes_.data(), chunk_bytes_.size() * sizeof(uint64_t),
              path);
  stream_start_ = static_cast<uint64_t>(std::ftell(file.get()));

  // Table sanity up front so LoadRange can trust offsets and seek bounds;
  // the stream itself is validated chunk by chunk as ranges decode.
  if (header_.chunk_edges == 0 || chunk_begin_[0] != 0 ||
      chunk_begin_[n] != header_.num_chunks || chunk_bytes_[c] != header_.stream_bytes) {
    throw std::runtime_error("inconsistent chunk tables in " + path);
  }
  uint64_t edge_total = 0;
  for (size_t v = 0; v < n; ++v) {
    const uint64_t expected = (static_cast<uint64_t>(degrees_[v]) +
                               header_.chunk_edges - 1) /
                              header_.chunk_edges;
    if (chunk_begin_[v] > chunk_begin_[v + 1] ||
        chunk_begin_[v + 1] - chunk_begin_[v] != expected) {
      throw std::runtime_error("inconsistent chunk tables in " + path);
    }
    edge_total += degrees_[v];
  }
  if (edge_total != header_.num_edges) {
    throw std::runtime_error("inconsistent chunk tables in " + path);
  }
  for (size_t i = 0; i < c; ++i) {
    if (chunk_bytes_[i] > chunk_bytes_[i + 1]) {
      throw std::runtime_error("inconsistent chunk tables in " + path);
    }
  }
  file_ = file.release();
}

SelectiveCompressedLoader::~SelectiveCompressedLoader() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

DecodedRange SelectiveCompressedLoader::LoadRange(VertexId v_lo, VertexId v_hi) {
  if (v_lo > v_hi || v_hi > header_.num_vertices) {
    throw std::runtime_error("vertex range out of bounds for " + path_);
  }
  DecodedRange range;
  range.v_lo = v_lo;
  range.v_hi = v_hi;
  const size_t span_vertices = v_hi - v_lo;
  range.offsets.resize(span_vertices + 1);
  range.offsets[0] = 0;
  for (size_t i = 0; i < span_vertices; ++i) {
    range.offsets[i + 1] = range.offsets[i] + degrees_[static_cast<size_t>(v_lo) + i];
  }
  const uint64_t range_edges = range.offsets[span_vertices];
  range.neighbors.resize(range_edges);
  if (header_.has_weights()) {
    range.weights.resize(range_edges);
  }

  const uint32_t chunk_lo = chunk_begin_[v_lo];
  const uint32_t chunk_hi = chunk_begin_[v_hi];
  const uint64_t byte_lo = chunk_bytes_[chunk_lo];
  const uint64_t byte_hi = chunk_bytes_[chunk_hi];
  const int64_t num_chunks = static_cast<int64_t>(chunk_hi) - chunk_lo;

  // Owner and output slot per chunk in the range, derived by one walk over
  // the vertex span — what lets every chunk decode independently below.
  std::vector<VertexId> chunk_owner(static_cast<size_t>(num_chunks));
  std::vector<uint64_t> chunk_slot(static_cast<size_t>(num_chunks));
  std::vector<uint32_t> chunk_count(static_cast<size_t>(num_chunks));
  for (size_t i = 0; i < span_vertices; ++i) {
    const VertexId v = v_lo + static_cast<VertexId>(i);
    const uint32_t first = chunk_begin_[v] - chunk_lo;
    const uint32_t chunks = chunk_begin_[static_cast<size_t>(v) + 1] - chunk_begin_[v];
    for (uint32_t k = 0; k < chunks; ++k) {
      const uint64_t consumed = static_cast<uint64_t>(k) * header_.chunk_edges;
      chunk_owner[first + k] = v;
      chunk_slot[first + k] = range.offsets[i] + consumed;
      chunk_count[first + k] = static_cast<uint32_t>(
          std::min<uint64_t>(header_.chunk_edges, degrees_[v] - consumed));
    }
  }

  // Read exactly the covering byte span — the rest of the stream is never
  // touched. This is the number the ablation gate checks against the full
  // stream size.
  std::vector<uint8_t> bytes(byte_hi - byte_lo);
  SeekOrThrow(file_, stream_start_ + byte_lo, path_);
  ReadOrThrow(file_, bytes.data(), bytes.size(), path_);

  std::vector<uint8_t> chunk_ok(static_cast<size_t>(num_chunks), 1);
  const bool weighted = header_.has_weights();
  ParallelFor(0, num_chunks, [&](int64_t i) {
    const size_t c = static_cast<size_t>(chunk_lo) + static_cast<size_t>(i);
    const uint8_t* cursor = bytes.data() + (chunk_bytes_[c] - byte_lo);
    const uint8_t* end = bytes.data() + (chunk_bytes_[c + 1] - byte_lo);
    const uint64_t out_base = chunk_slot[static_cast<size_t>(i)];
    const uint32_t size = chunk_count[static_cast<size_t>(i)];
    const VertexId owner = chunk_owner[static_cast<size_t>(i)];
    VertexId neighbor = 0;
    for (uint32_t j = 0; j < size; ++j) {
      uint64_t raw = 0;
      if (!CompressedCsr::DecodeVarintChecked(cursor, end, &raw)) {
        chunk_ok[static_cast<size_t>(i)] = 0;
        return;
      }
      int64_t candidate;
      if (j == 0) {
        const int64_t delta =
            static_cast<int64_t>(raw >> 1) ^ -static_cast<int64_t>(raw & 1);
        candidate = static_cast<int64_t>(owner) + delta;
      } else {
        candidate = static_cast<int64_t>(neighbor) + static_cast<int64_t>(raw);
      }
      if (candidate < 0 || candidate >= static_cast<int64_t>(header_.num_vertices)) {
        chunk_ok[static_cast<size_t>(i)] = 0;
        return;
      }
      neighbor = static_cast<VertexId>(candidate);
      range.neighbors[static_cast<size_t>(out_base + j)] = neighbor;
      if (weighted) {
        uint64_t weight_bits = 0;
        if (!CompressedCsr::DecodeVarintChecked(cursor, end, &weight_bits) ||
            weight_bits > 0xFFFFFFFFULL) {
          chunk_ok[static_cast<size_t>(i)] = 0;
          return;
        }
        range.weights[static_cast<size_t>(out_base + j)] =
            std::bit_cast<float>(static_cast<uint32_t>(weight_bits));
      }
    }
    if (cursor != end) {
      chunk_ok[static_cast<size_t>(i)] = 0;
    }
  });
  for (int64_t i = 0; i < num_chunks; ++i) {
    if (!chunk_ok[static_cast<size_t>(i)]) {
      throw std::runtime_error("corrupt compressed chunk in " + path_);
    }
  }

  stats_.bytes_decoded += bytes.size();
  stats_.bytes_skipped += header_.stream_bytes - bytes.size();
  stats_.chunks_decoded += static_cast<uint64_t>(num_chunks);
  ++stats_.ranges_loaded;
  obs::Registry& registry = obs::Registry::Get();
  registry.GetCounter("io.compressed.bytes_decoded")
      .Add(static_cast<int64_t>(bytes.size()));
  registry.GetCounter("io.compressed.bytes_skipped")
      .Add(static_cast<int64_t>(header_.stream_bytes - bytes.size()));
  registry.GetCounter("io.compressed.chunks_decoded").Add(num_chunks);
  return range;
}

DecodedRange SelectiveCompressedLoader::LoadPartition(uint32_t index, uint32_t partitions) {
  if (partitions == 0 || index >= partitions) {
    throw std::runtime_error("bad partition request for " + path_);
  }
  const uint64_t n = header_.num_vertices;
  const VertexId lo = static_cast<VertexId>(n * index / partitions);
  const VertexId hi = static_cast<VertexId>(n * (index + 1) / partitions);
  return LoadRange(lo, hi);
}

}  // namespace egraph
