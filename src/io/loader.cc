#include "src/io/loader.h"

#include <stdexcept>

#include "src/io/edge_io.h"
#include "src/obs/metrics.h"
#include "src/obs/phase.h"
#include "src/util/timer.h"

namespace egraph {
namespace {

// Streams the edge section of `path` chunk by chunk into `graph`, invoking
// `on_chunk(first_edge_index, count)` after each chunk lands in the edge
// array. Returns the header.
template <typename OnChunk>
EdgeFileHeader StreamEdges(const std::string& path, StorageMedium medium, size_t chunk_bytes,
                           EdgeList& graph, ThrottledFileReader& reader, OnChunk&& on_chunk) {
  EdgeFileHeader header;
  if (reader.Read(&header, sizeof(header)) != sizeof(header) ||
      header.magic != kEdgeFileMagic) {
    throw std::runtime_error("bad or truncated edge file: " + path);
  }
  (void)medium;
  graph.set_num_vertices(header.num_vertices);
  graph.mutable_edges().resize(header.num_edges);
  Edge* edges = graph.mutable_edges().data();

  const size_t edges_per_chunk = chunk_bytes / sizeof(Edge) == 0 ? 1 : chunk_bytes / sizeof(Edge);
  uint64_t cursor = 0;
  while (cursor < header.num_edges) {
    const uint64_t want =
        std::min<uint64_t>(edges_per_chunk, header.num_edges - cursor);
    const size_t got = reader.Read(edges + cursor, want * sizeof(Edge));
    if (got != want * sizeof(Edge)) {
      throw std::runtime_error("truncated edge section in " + path);
    }
    on_chunk(cursor, want);
    cursor += want;
  }
  if (header.has_weights()) {
    graph.mutable_weights().resize(header.num_edges);
    const size_t bytes = header.num_edges * sizeof(float);
    if (reader.Read(graph.mutable_weights().data(), bytes) != bytes) {
      throw std::runtime_error("truncated weight section in " + path);
    }
  }
  return header;
}

}  // namespace

EdgeList LoadEdges(const std::string& path, StorageMedium medium, double* seconds) {
  obs::ScopedPhase phase(obs::Phase::kLoad);
  Timer timer;
  EdgeList graph;
  ThrottledFileReader reader(path, medium);
  StreamEdges(path, medium, 8u << 20, graph, reader, [](uint64_t, uint64_t) {});
  obs::Registry::Get().GetCounter("io.edges_loaded").Add(
      static_cast<int64_t>(graph.num_edges()));
  if (seconds != nullptr) {
    *seconds = timer.Seconds();
  }
  return graph;
}

LoadBuildResult LoadAndBuild(const std::string& path, const LoadBuildOptions& options) {
  LoadBuildResult result;
  Timer total;
  ThrottledFileReader reader(path, options.medium);

  switch (options.method) {
    case BuildMethod::kDynamic: {
      // Peek vertex count first (builders need it up front), then stream and
      // grow per-vertex arrays as chunks arrive.
      const EdgeFileHeader header = ReadEdgeFileHeader(path);
      DynamicAdjacencyBuilder out_builder(header.num_vertices, EdgeDirection::kOut,
                                          header.has_weights());
      DynamicAdjacencyBuilder in_builder(header.num_vertices, EdgeDirection::kIn,
                                         header.has_weights());
      StreamEdges(path, options.medium, options.chunk_bytes, result.edges, reader,
                  [&](uint64_t first, uint64_t count) {
                    std::span<const Edge> chunk(result.edges.edges().data() + first, count);
                    // Weights stream after edges in the file; dynamic chunks
                    // use unit weights here, which only matters for weighted
                    // graphs streamed from disk (none of the paper's Table 3
                    // workloads are weighted).
                    out_builder.AddChunk(chunk, {});
                    if (options.build_in) {
                      in_builder.AddChunk(chunk, {});
                    }
                  });
      // The paper's dynamic adjacency structure is complete here.
      result.ready_seconds = total.Seconds();
      Timer post;
      result.out = out_builder.Finalize();
      if (options.build_in) {
        result.in = in_builder.Finalize();
        result.has_in = true;
      }
      result.post_load_seconds = post.Seconds();
      break;
    }
    case BuildMethod::kCountSort: {
      const EdgeFileHeader header = ReadEdgeFileHeader(path);
      CountingAdjacencyBuilder out_builder(header.num_vertices, EdgeDirection::kOut);
      CountingAdjacencyBuilder in_builder(header.num_vertices, EdgeDirection::kIn);
      StreamEdges(path, options.medium, options.chunk_bytes, result.edges, reader,
                  [&](uint64_t first, uint64_t count) {
                    std::span<const Edge> chunk(result.edges.edges().data() + first, count);
                    out_builder.CountChunk(chunk);
                    if (options.build_in) {
                      in_builder.CountChunk(chunk);
                    }
                  });
      Timer post;
      result.out = out_builder.Scatter(result.edges);
      if (options.build_in) {
        result.in = in_builder.Scatter(result.edges);
        result.has_in = true;
      }
      result.post_load_seconds = post.Seconds();
      break;
    }
    case BuildMethod::kRadixSort: {
      StreamEdges(path, options.medium, options.chunk_bytes, result.edges, reader,
                  [](uint64_t, uint64_t) {});
      Timer post;
      result.out = BuildCsr(result.edges, EdgeDirection::kOut, BuildMethod::kRadixSort);
      if (options.build_in) {
        result.in = BuildCsr(result.edges, EdgeDirection::kIn, BuildMethod::kRadixSort);
        result.has_in = true;
      }
      result.post_load_seconds = post.Seconds();
      break;
    }
  }
  result.load_stall_seconds = reader.stall_seconds();
  result.total_seconds = total.Seconds();
  if (options.method != BuildMethod::kDynamic) {
    result.ready_seconds = result.total_seconds;
  }
  // Phase attribution follows the paper's split: streaming the file is
  // "load"; everything after the last byte (Finalize/Scatter/BuildCsr) is
  // "pre-process". For kDynamic the structure grows during the stream, so
  // only the Finalize tail counts as pre-processing.
  obs::PhaseTimers::Get().Add(obs::Phase::kLoad,
                              result.total_seconds - result.post_load_seconds);
  obs::PhaseTimers::Get().Add(obs::Phase::kPreprocess, result.post_load_seconds);
  obs::Registry::Get().GetCounter("io.edges_loaded").Add(
      static_cast<int64_t>(result.edges.num_edges()));
  return result;
}

}  // namespace egraph
