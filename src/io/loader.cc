#include "src/io/loader.h"

#include <functional>
#include <memory>
#include <stdexcept>

#include "src/io/edge_io.h"
#include "src/io/parallel_loader.h"
#include "src/obs/metrics.h"
#include "src/obs/phase.h"
#include "src/util/timer.h"

namespace egraph {
namespace {

// Streams the edge section of `path` chunk by chunk into `graph`, invoking
// `on_chunk(first_edge_index, count)` after each chunk lands in the edge
// array. Endpoints are validated per chunk. Returns the header.
template <typename OnChunk>
EdgeFileHeader StreamEdges(const std::string& path, size_t chunk_bytes, EdgeList& graph,
                           ThrottledFileReader& reader, OnChunk&& on_chunk) {
  EdgeFileHeader header;
  if (reader.Read(&header, sizeof(header)) != sizeof(header) ||
      header.magic != kEdgeFileMagic) {
    throw std::runtime_error("bad or truncated edge file: " + path);
  }
  ValidateEdgeFileSize(header, reader.file_bytes(), path);
  graph.set_num_vertices(header.num_vertices);
  graph.mutable_edges().resize(header.num_edges);
  Edge* edges = graph.mutable_edges().data();

  const size_t edges_per_chunk = chunk_bytes / sizeof(Edge) == 0 ? 1 : chunk_bytes / sizeof(Edge);
  uint64_t cursor = 0;
  while (cursor < header.num_edges) {
    const uint64_t want =
        std::min<uint64_t>(edges_per_chunk, header.num_edges - cursor);
    const size_t got = reader.Read(edges + cursor, want * sizeof(Edge));
    if (got != want * sizeof(Edge)) {
      throw std::runtime_error("truncated edge section in " + path);
    }
    ValidateEdgeChunk({edges + cursor, static_cast<size_t>(want)}, header.num_vertices,
                      path);
    on_chunk(cursor, want);
    cursor += want;
  }
  if (header.has_weights()) {
    graph.mutable_weights().resize(header.num_edges);
    const size_t bytes = header.num_edges * sizeof(float);
    if (reader.Read(graph.mutable_weights().data(), bytes) != bytes) {
      throw std::runtime_error("truncated weight section in " + path);
    }
  }
  return header;
}

}  // namespace

const char* LoaderKindName(LoaderKind kind) {
  switch (kind) {
    case LoaderKind::kSequential:
      return "sequential";
    case LoaderKind::kPipelined:
      return "pipelined";
  }
  return "?";
}

EdgeList LoadEdges(const std::string& path, StorageMedium medium, double* seconds) {
  obs::ScopedPhase phase(obs::Phase::kLoad);
  Timer timer;
  EdgeList graph;
  ThrottledFileReader reader(path, medium);
  StreamEdges(path, 8u << 20, graph, reader, [](uint64_t, uint64_t) {});
  obs::Registry::Get().GetCounter("io.edges_loaded").Add(
      static_cast<int64_t>(graph.num_edges()));
  if (seconds != nullptr) {
    *seconds = timer.Seconds();
  }
  return graph;
}

LoadBuildResult LoadAndBuild(const std::string& path, const LoadBuildOptions& options) {
  LoadBuildResult result;
  Timer total;

  // Builders need the vertex count up front; the header read is tiny and
  // unthrottled (metadata, not payload).
  const EdgeFileHeader header = ReadEdgeFileHeader(path);

  std::unique_ptr<DynamicAdjacencyBuilder> dyn_out;
  std::unique_ptr<DynamicAdjacencyBuilder> dyn_in;
  std::unique_ptr<CountingAdjacencyBuilder> count_out;
  std::unique_ptr<CountingAdjacencyBuilder> count_in;

  // The per-chunk work each build method can overlap with the transfer.
  // Chunks address disjoint, already-landed slices of result.edges, so the
  // same callback serves both loader kinds.
  std::function<void(uint64_t, uint64_t)> on_chunk = [](uint64_t, uint64_t) {};
  switch (options.method) {
    case BuildMethod::kDynamic:
      dyn_out = std::make_unique<DynamicAdjacencyBuilder>(
          header.num_vertices, EdgeDirection::kOut, header.has_weights());
      if (options.build_in) {
        dyn_in = std::make_unique<DynamicAdjacencyBuilder>(
            header.num_vertices, EdgeDirection::kIn, header.has_weights());
      }
      on_chunk = [&result, &dyn_out, &dyn_in](uint64_t first, uint64_t count) {
        std::span<const Edge> chunk(result.edges.edges().data() + first, count);
        // Weights stream after the edge section; AddChunkDeferred records
        // file indices so FinalizeDeferred attaches the real weights (the
        // old path silently substituted unit weights here).
        dyn_out->AddChunkDeferred(chunk, first);
        if (dyn_in != nullptr) {
          dyn_in->AddChunkDeferred(chunk, first);
        }
      };
      break;
    case BuildMethod::kCountSort:
      count_out = std::make_unique<CountingAdjacencyBuilder>(header.num_vertices,
                                                             EdgeDirection::kOut);
      if (options.build_in) {
        count_in = std::make_unique<CountingAdjacencyBuilder>(header.num_vertices,
                                                              EdgeDirection::kIn);
      }
      on_chunk = [&result, &count_out, &count_in](uint64_t first, uint64_t count) {
        std::span<const Edge> chunk(result.edges.edges().data() + first, count);
        count_out->CountChunk(chunk);
        if (count_in != nullptr) {
          count_in->CountChunk(chunk);
        }
      };
      break;
    case BuildMethod::kRadixSort:
      // Radix sorting needs the complete edge array; nothing to overlap.
      break;
  }

  if (options.loader == LoaderKind::kPipelined) {
    ParallelLoader loader;
    ParallelLoader::Options loader_options;
    loader_options.medium = options.medium;
    loader_options.chunk_bytes = options.chunk_bytes;
    loader_options.max_chunks_in_flight = options.max_chunks_in_flight;
    loader.Load(path, loader_options, result.edges, on_chunk);
    result.load_stall_seconds = loader.stats().stall_seconds;
    result.overlap_seconds = loader.stats().overlap_seconds;
  } else {
    ThrottledFileReader reader(path, options.medium);
    StreamEdges(path, options.chunk_bytes, result.edges, reader, on_chunk);
    result.load_stall_seconds = reader.stall_seconds();
    // The pipelined loader exports these itself (with bytes/overlap detail);
    // mirror the stall counter here so both loaders are comparable in traces.
    obs::Registry::Get().GetCounter("io.stall_micros").Add(
        static_cast<int64_t>(result.load_stall_seconds * 1e6));
  }

  if (options.method == BuildMethod::kDynamic) {
    // The paper's dynamic adjacency structure is complete here.
    result.ready_seconds = total.Seconds();
  }

  Timer post;
  switch (options.method) {
    case BuildMethod::kDynamic:
      result.out = dyn_out->FinalizeDeferred(result.edges.weights());
      if (dyn_in != nullptr) {
        result.in = dyn_in->FinalizeDeferred(result.edges.weights());
        result.has_in = true;
      }
      break;
    case BuildMethod::kCountSort:
      result.out = count_out->Scatter(result.edges);
      if (count_in != nullptr) {
        result.in = count_in->Scatter(result.edges);
        result.has_in = true;
      }
      break;
    case BuildMethod::kRadixSort:
      result.out = BuildCsr(result.edges, EdgeDirection::kOut, BuildMethod::kRadixSort);
      if (options.build_in) {
        result.in = BuildCsr(result.edges, EdgeDirection::kIn, BuildMethod::kRadixSort);
        result.has_in = true;
      }
      break;
  }
  result.post_load_seconds = post.Seconds();
  result.total_seconds = total.Seconds();
  if (options.method != BuildMethod::kDynamic) {
    result.ready_seconds = result.total_seconds;
  }
  // Phase attribution follows the paper's split: streaming the file is
  // "load"; everything after the last byte (Finalize/Scatter/BuildCsr) is
  // "pre-process". For kDynamic the structure grows during the stream, so
  // only the Finalize tail counts as pre-processing. The pipelined loader
  // keeps the same attribution — overlap shrinks the load wall time rather
  // than moving work between phases.
  obs::PhaseTimers::Get().Add(obs::Phase::kLoad,
                              result.total_seconds - result.post_load_seconds);
  obs::PhaseTimers::Get().Add(obs::Phase::kPreprocess, result.post_load_seconds);
  obs::Registry::Get().GetCounter("io.edges_loaded").Add(
      static_cast<int64_t>(result.edges.num_edges()));
  return result;
}

}  // namespace egraph
