#include "src/io/parallel_loader.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "src/obs/metrics.h"
#include "src/obs/timeline.h"
#include "src/util/timer.h"

namespace egraph {
namespace {

struct ChunkDesc {
  uint64_t first = 0;
  uint64_t count = 0;
};

// Bounded single-producer single-consumer chunk queue. The mutex handoff
// doubles as the happens-before edge that publishes the chunk's bytes
// (written by the reader thread) to the consumer.
class BoundedChunkQueue {
 public:
  explicit BoundedChunkQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  // Blocks while full. Returns false if the consumer closed the queue.
  bool Push(const ChunkDesc& chunk) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return queue_.size() < capacity_ || closed_; });
    if (closed_) {
      return false;
    }
    queue_.push_back(chunk);
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Returns false once the producer finished and the
  // queue drained.
  bool Pop(ChunkDesc& chunk) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return !queue_.empty() || finished_; });
    if (queue_.empty()) {
      return false;
    }
    chunk = queue_.front();
    queue_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void Finish() {
    std::lock_guard<std::mutex> lock(mutex_);
    finished_ = true;
    not_empty_.notify_all();
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_full_.notify_all();
  }

 private:
  const size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<ChunkDesc> queue_;
  bool finished_ = false;  // producer done
  bool closed_ = false;    // consumer aborted
};

}  // namespace

EdgeFileHeader ParallelLoader::Load(const std::string& path, const Options& options,
                                    EdgeList& graph,
                                    const std::function<void(uint64_t, uint64_t)>& on_chunk) {
  stats_ = ParallelLoadStats{};
  ThrottledFileReader reader(path, options.medium);

  EdgeFileHeader header;
  if (reader.Read(&header, sizeof(header)) != sizeof(header) ||
      header.magic != kEdgeFileMagic) {
    throw std::runtime_error("bad or truncated edge file: " + path);
  }
  // Check the declared sections against the physical file before allocating:
  // a corrupt edge count must fail cleanly, not OOM or scatter out of bounds.
  ValidateEdgeFileSize(header, reader.file_bytes(), path);

  graph.set_num_vertices(header.num_vertices);
  graph.mutable_edges().resize(header.num_edges);
  if (header.has_weights()) {
    graph.mutable_weights().resize(header.num_edges);
  }
  Edge* edges = graph.mutable_edges().data();
  float* weights = header.has_weights() ? graph.mutable_weights().data() : nullptr;

  const size_t edges_per_chunk =
      options.chunk_bytes / sizeof(Edge) == 0 ? 1 : options.chunk_bytes / sizeof(Edge);
  BoundedChunkQueue queue(static_cast<size_t>(
      options.max_chunks_in_flight < 1 ? 1 : options.max_chunks_in_flight));

  std::atomic<bool> reader_active{true};
  std::atomic<uint64_t> bytes_landed{0};
  std::atomic<uint64_t> bytes_consumed{0};
  std::atomic<uint64_t> peak_in_flight{0};
  std::exception_ptr reader_error;
  double reader_seconds = 0.0;

  std::thread reader_thread([&] {
    obs::Timeline::SetThreadLabel("io.reader");
    Timer reader_timer;
    try {
      uint64_t cursor = 0;
      while (cursor < header.num_edges) {
        const uint64_t want =
            std::min<uint64_t>(edges_per_chunk, header.num_edges - cursor);
        size_t got = 0;
        {
          obs::TimelineSpan read_span("io", "read.chunk",
                                      static_cast<int64_t>(want * sizeof(Edge)));
          got = reader.Read(edges + cursor, want * sizeof(Edge));
        }
        if (got != want * sizeof(Edge)) {
          throw std::runtime_error("truncated edge section in " + path);
        }
        const uint64_t landed =
            bytes_landed.fetch_add(got, std::memory_order_relaxed) + got;
        const uint64_t in_flight = landed - bytes_consumed.load(std::memory_order_relaxed);
        uint64_t peak = peak_in_flight.load(std::memory_order_relaxed);
        while (in_flight > peak &&
               !peak_in_flight.compare_exchange_weak(peak, in_flight,
                                                     std::memory_order_relaxed)) {
        }
        bool accepted = false;
        {
          // Time spent in Push beyond the lock handoff is backpressure: the
          // consumer has not drained the bounded queue yet.
          obs::TimelineSpan push_span("io", "queue.push");
          accepted = queue.Push({cursor, want});
        }
        if (!accepted) {
          break;  // consumer aborted
        }
        cursor += want;
      }
      if (weights != nullptr && cursor == header.num_edges) {
        // The weight section trails the edge section; stream it in the same
        // chunk granularity so bandwidth accounting stays uniform.
        uint64_t wcursor = 0;
        const uint64_t weights_per_chunk = edges_per_chunk * 2;  // floats are half an Edge
        while (wcursor < header.num_edges) {
          const uint64_t want =
              std::min<uint64_t>(weights_per_chunk, header.num_edges - wcursor);
          size_t got = 0;
          {
            obs::TimelineSpan read_span("io", "read.weights",
                                        static_cast<int64_t>(want * sizeof(float)));
            got = reader.Read(weights + wcursor, want * sizeof(float));
          }
          if (got != want * sizeof(float)) {
            throw std::runtime_error("truncated weight section in " + path);
          }
          bytes_landed.fetch_add(got, std::memory_order_relaxed);
          bytes_consumed.fetch_add(got, std::memory_order_relaxed);
          wcursor += want;
        }
      }
    } catch (...) {
      reader_error = std::current_exception();
    }
    reader_seconds = reader_timer.Seconds();
    reader_active.store(false, std::memory_order_relaxed);
    queue.Finish();
  });

  try {
    ChunkDesc chunk;
    auto pop_next = [&queue, &chunk] {
      obs::TimelineSpan wait_span("io", "load.wait");
      return queue.Pop(chunk);
    };
    while (pop_next()) {
      Timer build_timer;
      obs::TimelineSpan build_span("io", "build.chunk",
                                   static_cast<int64_t>(chunk.count));
      ValidateEdgeChunk({edges + chunk.first, static_cast<size_t>(chunk.count)},
                        header.num_vertices, path);
      on_chunk(chunk.first, chunk.count);
      bytes_consumed.fetch_add(chunk.count * sizeof(Edge), std::memory_order_relaxed);
      ++stats_.chunks;
      // Count the chunk's build time as overlapped only if the reader was
      // still streaming when it ended (conservative: a chunk the reader
      // finished under counts zero).
      if (reader_active.load(std::memory_order_relaxed)) {
        stats_.overlap_seconds += build_timer.Seconds();
      }
    }
  } catch (...) {
    queue.Close();
    reader_thread.join();
    throw;
  }
  reader_thread.join();
  if (reader_error != nullptr) {
    std::rethrow_exception(reader_error);
  }

  stats_.stall_seconds = reader.stall_seconds();
  stats_.reader_seconds = reader_seconds;
  stats_.bytes_read = bytes_landed.load(std::memory_order_relaxed);
  stats_.peak_bytes_in_flight = peak_in_flight.load(std::memory_order_relaxed);

  obs::Registry& registry = obs::Registry::Get();
  registry.GetCounter("io.stall_micros")
      .Add(static_cast<int64_t>(stats_.stall_seconds * 1e6));
  registry.GetCounter("io.overlap_micros")
      .Add(static_cast<int64_t>(stats_.overlap_seconds * 1e6));
  registry.GetCounter("io.bytes_read").Add(static_cast<int64_t>(stats_.bytes_read));
  registry.GetHistogram("io.bytes_in_flight")
      .Record(static_cast<int64_t>(stats_.peak_bytes_in_flight));
  return header;
}

}  // namespace egraph
