// Wall-clock timing helpers used for every phase breakdown in the paper's
// experiments (loading, pre-processing, partitioning, algorithm execution).
#ifndef SRC_UTIL_TIMER_H_
#define SRC_UTIL_TIMER_H_

#include <chrono>

namespace egraph {

// Simple monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates the wall time of several disjoint intervals; used for
// per-iteration breakdowns (paper Fig. 6).
class AccumulatingTimer {
 public:
  void Start() { timer_.Reset(); }
  void Stop() { total_ += timer_.Seconds(); }
  double Seconds() const { return total_; }
  void Clear() { total_ = 0.0; }

 private:
  Timer timer_;
  double total_ = 0.0;
};

}  // namespace egraph

#endif  // SRC_UTIL_TIMER_H_
