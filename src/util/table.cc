#include "src/util/table.h"

#include <cinttypes>
#include <cstdio>
#include <iostream>

namespace egraph {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) {
        widths[c] = row[c].size();
      }
    }
  }

  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(widths[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };
  append_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) {
    append_row(row);
  }
  return out;
}

void Table::Print(const std::string& title) const {
  std::cout << "\n=== " << title << " ===\n" << ToString() << std::flush;
}

std::string Table::FormatSeconds(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", seconds);
  return buffer;
}

std::string Table::FormatPercent(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f%%", fraction * 100.0);
  return buffer;
}

std::string Table::FormatCount(int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
  return buffer;
}

}  // namespace egraph
