#include "src/util/thread_pool.h"

#include "src/obs/timeline.h"
#include "src/util/env.h"

namespace egraph {
namespace {

thread_local int tls_worker_id = ThreadPool::kNoWorker;
thread_local bool tls_in_region = false;
thread_local ThreadPool* tls_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads),
      queues_(num_threads_),
      steal_counts_(num_threads_) {
  threads_.reserve(num_threads_ - 1);
  for (int i = 1; i < num_threads_; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& thread : threads_) {
    thread.join();
  }
}

ThreadPool& ThreadPool::Get() {
  static ThreadPool pool(EnvThreadCount());
  return pool;
}

ThreadPool& ThreadPool::Current() {
  return tls_current_pool != nullptr ? *tls_current_pool : Get();
}

ScopedPoolBinding::ScopedPoolBinding(ThreadPool& pool) : previous_(tls_current_pool) {
  tls_current_pool = &pool;
}

ScopedPoolBinding::~ScopedPoolBinding() { tls_current_pool = previous_; }

uint64_t ThreadPool::steal_count() const {
  uint64_t total = 0;
  for (const StealCounter& counter : steal_counts_) {
    total += counter.value.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> ThreadPool::StealCountsPerWorker() const {
  std::vector<uint64_t> counts(steal_counts_.size());
  for (size_t i = 0; i < steal_counts_.size(); ++i) {
    counts[i] = steal_counts_[i].value.load(std::memory_order_relaxed);
  }
  return counts;
}

int ThreadPool::CurrentWorker() { return tls_worker_id; }

bool ThreadPool::InParallelRegion() { return tls_in_region; }

void ThreadPool::ParallelForChunks(int64_t begin, int64_t end, int64_t grain,
                                   const std::function<void(int64_t, int64_t, int)>& body) {
  if (begin >= end) {
    return;
  }
  const int64_t count = end - begin;
  if (tls_in_region || num_threads_ == 1) {
    // Nested region or single-threaded pool: run serially in place. Chunking
    // is preserved so that per-chunk setup in the body behaves identically,
    // and chunk spans are still emitted so single-threaded traces show the
    // same run structure as parallel ones. An external caller (not inside
    // any region) runs as worker 0 of this pool for the duration, so the
    // worker id handed to the body is always valid for per-worker buffers.
    const int saved_worker = tls_worker_id;
    const bool saved_in_region = tls_in_region;
    if (!saved_in_region) {
      tls_worker_id = 0;
      tls_in_region = true;
    }
    obs::Timeline::NoteWorker(tls_worker_id);
    const int64_t g = grain > 0 ? grain : count;
    for (int64_t lo = begin; lo < end; lo += g) {
      const int64_t hi = lo + g < end ? lo + g : end;
      obs::TimelineSpan span("pool", "run", hi - lo);
      body(lo, hi, tls_worker_id);
    }
    tls_worker_id = saved_worker;
    tls_in_region = saved_in_region;
    return;
  }

  // Only one region may run at a time; concurrent external callers queue up.
  std::lock_guard<std::mutex> region_guard(region_mutex_);
  obs::TimelineSpan region_span("pool", "region", count);

  int64_t g = grain;
  if (g <= 0) {
    g = count / (static_cast<int64_t>(num_threads_) * 8);
    if (g < 1) {
      g = 1;
    }
  }

  // Distribute chunks round-robin across worker queues.
  for (auto& queue : queues_) {
    queue.chunks.clear();
    queue.next.store(0, std::memory_order_relaxed);
  }
  int64_t lo = begin;
  int target = 0;
  while (lo < end) {
    const int64_t hi = lo + g < end ? lo + g : end;
    queues_[target].chunks.push_back({lo, hi});
    lo = hi;
    target = (target + 1) % num_threads_;
  }

  {
    std::lock_guard<std::mutex> guard(mutex_);
    body_ = &body;
    pending_workers_ = num_threads_ - 1;
    ++epoch_;
  }
  start_cv_.notify_all();

  // The calling thread participates as worker 0.
  RunRegion(0);

  if (num_threads_ > 1) {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
    body_ = nullptr;
  }
}

void ThreadPool::RunRegion(int worker_id) {
  tls_worker_id = worker_id;
  tls_in_region = true;
  obs::Timeline::NoteWorker(worker_id);
  const auto& body = *body_;

  // Drain own queue first; then steal from victims round-robin.
  for (int offset = 0; offset < num_threads_; ++offset) {
    const int victim = (worker_id + offset) % num_threads_;
    WorkerQueue& queue = queues_[victim];
    const int64_t limit = static_cast<int64_t>(queue.chunks.size());
    while (true) {
      const int64_t index = queue.next.fetch_add(1, std::memory_order_relaxed);
      if (index >= limit) {
        break;
      }
      const bool stolen = offset != 0;
      if (stolen) {
        steal_counts_[static_cast<size_t>(worker_id)].value.fetch_add(
            1, std::memory_order_relaxed);
      }
      const Chunk chunk = queue.chunks[static_cast<size_t>(index)];
      obs::TimelineSpan span("pool", stolen ? "steal" : "run",
                             chunk.end - chunk.begin);
      body(chunk.begin, chunk.end, worker_id);
    }
  }

  tls_in_region = false;
  tls_worker_id = kNoWorker;
}

void ThreadPool::WorkerLoop(int worker_id) {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      // The wait for the next region is the worker's idle time: with the
      // timeline on, gaps between a worker's run spans show up as explicit
      // idle spans instead of blank track space.
      obs::TimelineSpan idle("pool", "idle");
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) {
        return;
      }
      seen_epoch = epoch_;
    }
    RunRegion(worker_id);
    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (--pending_workers_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

}  // namespace egraph
