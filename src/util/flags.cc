#include "src/util/flags.h"

#include <cstdlib>

namespace egraph {

Flags::Flags(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--key value" unless the next token is another flag or absent.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::Has(const std::string& key) const {
  queried_[key] = true;
  return values_.count(key) != 0;
}

std::string Flags::GetString(const std::string& key, const std::string& def) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t def) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  return end == it->second.c_str() ? def : parsed;
}

double Flags::GetDouble(const std::string& key, double def) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? def : parsed;
}

bool Flags::GetBool(const std::string& key, bool def) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Flags::UnusedKeys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    if (queried_.count(key) == 0) {
      unused.push_back(key);
    }
  }
  return unused;
}

}  // namespace egraph
