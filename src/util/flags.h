// Minimal command-line flag parsing for the tools and examples:
// --key=value / --key value / --bool-flag. No global state.
#ifndef SRC_UTIL_FLAGS_H_
#define SRC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace egraph {

class Flags {
 public:
  // Parses argv; unrecognized positional arguments are kept in order.
  // A trailing "--key" with no value becomes a boolean flag ("true").
  Flags(int argc, char** argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key, const std::string& def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  // Keys that were provided but never queried (typo detection).
  std::vector<std::string> UnusedKeys() const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace egraph

#endif  // SRC_UTIL_FLAGS_H_
