// Lock-free update helpers used by push-mode edge functions: compare-and-swap
// loops for min/add on plain (non std::atomic) storage. Graph metadata lives
// in plain arrays so that pull mode and lock-owned modes can access it without
// atomic overhead; push mode upgrades individual accesses via these helpers.
#ifndef SRC_UTIL_ATOMICS_H_
#define SRC_UTIL_ATOMICS_H_

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace egraph {

// Atomically performs `*target = min(*target, value)`.
// Returns true iff this call lowered the stored value.
template <typename T>
bool AtomicMin(T* target, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto* a = reinterpret_cast<std::atomic<T>*>(target);
  T current = a->load(std::memory_order_relaxed);
  while (value < current) {
    if (a->compare_exchange_weak(current, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

// Atomically performs `*target += value` for floating point or integral T.
template <typename T>
void AtomicAdd(T* target, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if constexpr (std::is_integral_v<T>) {
    reinterpret_cast<std::atomic<T>*>(target)->fetch_add(value, std::memory_order_relaxed);
  } else {
    auto* a = reinterpret_cast<std::atomic<T>*>(target);
    T current = a->load(std::memory_order_relaxed);
    while (!a->compare_exchange_weak(current, current + value, std::memory_order_relaxed)) {
    }
  }
}

// Atomically replaces `*target` with `desired` iff it currently equals
// `expected`. Returns true on success. Used e.g. by BFS to claim a vertex.
template <typename T>
bool AtomicCas(T* target, T expected, T desired) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto* a = reinterpret_cast<std::atomic<T>*>(target);
  return a->compare_exchange_strong(expected, desired, std::memory_order_relaxed);
}

// Relaxed atomic load/store on plain storage.
template <typename T>
T AtomicLoad(const T* target) {
  return reinterpret_cast<const std::atomic<T>*>(target)->load(std::memory_order_relaxed);
}

template <typename T>
void AtomicStore(T* target, T value) {
  reinterpret_cast<std::atomic<T>*>(target)->store(value, std::memory_order_relaxed);
}

}  // namespace egraph

#endif  // SRC_UTIL_ATOMICS_H_
