// Spinlocks and striped lock arrays. The paper's "push with locks" mode
// protects destination-vertex metadata with fine-grained locks; a striped
// array bounds memory while keeping contention low.
#ifndef SRC_UTIL_SPINLOCK_H_
#define SRC_UTIL_SPINLOCK_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace egraph {

// Test-and-test-and-set spinlock with exponential-free pause loop. Fits in a
// single byte so striped arrays stay cache-compact.
class Spinlock {
 public:
  void Lock() {
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      while (flag_.load(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
  }

  bool TryLock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void Unlock() { flag_.store(false, std::memory_order_release); }

 private:
  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  }
  std::atomic<bool> flag_{false};
};

// RAII guard for Spinlock.
class SpinlockGuard {
 public:
  explicit SpinlockGuard(Spinlock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinlockGuard() { lock_.Unlock(); }
  SpinlockGuard(const SpinlockGuard&) = delete;
  SpinlockGuard& operator=(const SpinlockGuard&) = delete;

 private:
  Spinlock& lock_;
};

// Fixed pool of spinlocks indexed by key hash. Protecting per-vertex state
// with `locks[v & mask]` gives fine-grained locking with O(stripes) memory.
class StripedLocks {
 public:
  // `stripes` is rounded up to a power of two; default covers typical
  // thread counts with low collision probability.
  explicit StripedLocks(size_t stripes = 4096) {
    size_t n = 1;
    while (n < stripes) {
      n <<= 1;
    }
    mask_ = n - 1;
    locks_ = std::make_unique<Padded[]>(n);
  }

  Spinlock& For(uint64_t key) { return locks_[key & mask_].lock; }
  size_t stripe_count() const { return mask_ + 1; }

 private:
  // Pad each lock to its own cache line to avoid false sharing between
  // stripes under heavy contention.
  struct alignas(64) Padded {
    Spinlock lock;
  };
  std::unique_ptr<Padded[]> locks_;
  size_t mask_ = 0;
};

}  // namespace egraph

#endif  // SRC_UTIL_SPINLOCK_H_
