// Plain-text table printer used by the benchmark harness to emit the paper's
// tables and figure series in a uniform, grep-friendly format.
#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace egraph {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; cells are stringified by the caller (see AddRow overload
  // helpers in table.cc users). Rows shorter than the header are padded.
  void AddRow(std::vector<std::string> cells);

  // Renders the table with aligned columns.
  std::string ToString() const;

  // Prints to stdout with a title banner.
  void Print(const std::string& title) const;

  static std::string FormatSeconds(double seconds);
  static std::string FormatPercent(double fraction);
  static std::string FormatCount(int64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace egraph

#endif  // SRC_UTIL_TABLE_H_
