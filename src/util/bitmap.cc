#include "src/util/bitmap.h"

#include "src/util/parallel.h"

namespace egraph {

Bitmap::Bitmap(int64_t bits) { Resize(bits); }

void Bitmap::Resize(int64_t bits) {
  bits_ = bits;
  const size_t words = static_cast<size_t>((bits + 63) / 64);
  // std::atomic is not movable; rebuild the vector then zero it.
  words_ = std::vector<std::atomic<uint64_t>>(words);
  Clear();
}

void Bitmap::Clear() {
  ParallelFor(0, static_cast<int64_t>(words_.size()), [this](int64_t w) {
    words_[static_cast<size_t>(w)].store(0, std::memory_order_relaxed);
  });
}

int64_t Bitmap::Count() const {
  return ParallelReduceSum<int64_t>(0, static_cast<int64_t>(words_.size()), [this](int64_t w) {
    return static_cast<int64_t>(
        __builtin_popcountll(words_[static_cast<size_t>(w)].load(std::memory_order_relaxed)));
  });
}

void Bitmap::ToVector(std::vector<uint32_t>& out) const {
  out.clear();
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w].load(std::memory_order_relaxed);
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      out.push_back(static_cast<uint32_t>(w * 64 + static_cast<size_t>(bit)));
      word &= word - 1;
    }
  }
}

}  // namespace egraph
