// Environment-variable configuration knobs shared by tests, benches and
// examples. All knobs are optional; defaults keep the workload laptop-sized.
#ifndef SRC_UTIL_ENV_H_
#define SRC_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace egraph {

// Returns the integer value of environment variable `name`, or `def` when the
// variable is unset or unparsable.
int64_t EnvInt64(const char* name, int64_t def);

// Returns the double value of environment variable `name`, or `def`.
double EnvDouble(const char* name, double def);

// Returns the string value of environment variable `name`, or `def`.
std::string EnvString(const char* name, const std::string& def);

// EG_THREADS: number of worker threads for the global pool.
// Defaults to std::thread::hardware_concurrency().
int EnvThreadCount();

// EG_SCALE: base R-MAT scale used by the benchmark harness (default 18).
// Every bench derives its graph sizes from this so the whole suite can be
// scaled up on a bigger machine with one knob.
int EnvBenchScale();

}  // namespace egraph

#endif  // SRC_UTIL_ENV_H_
