// Work-stealing thread pool: the parallel runtime substrate standing in for
// the Cilk runtime used by the paper (the paper reports OpenMP and PThreads
// perform comparably, so the specific runtime is not load-bearing).
//
// Parallel loops split their iteration space into chunks that are distributed
// round-robin onto per-worker queues; a worker that drains its own queue
// steals chunks from victims. This matches the paper's description: "threads
// take work items from the queue in large enough chunks to reduce the work
// distribution overheads" and "Cilk balances the work among threads by
// allowing threads to steal work items from one another".
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace egraph {

class ThreadPool {
 public:
  // `num_threads` counts all participants including the calling thread:
  // the pool spawns num_threads - 1 workers and the caller joins in.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Process-wide default pool, sized by EG_THREADS (default: hardware
  // concurrency). Library code should prefer Current(), which resolves to
  // this pool unless an execution context has bound its own.
  static ThreadPool& Get();

  // The pool parallel work on this thread should run on: the pool bound by
  // the innermost ScopedPoolBinding (an ExecutionContext with a private
  // pool), falling back to Get(). This is how the default context keeps the
  // old process-wide behaviour while concurrent query contexts get isolated
  // worker sets.
  static ThreadPool& Current();

  int num_threads() const { return num_threads_; }

  // Calls body(chunk_begin, chunk_end, worker_id) until [begin, end) is
  // covered. Chunks have `grain` iterations (last chunk may be short);
  // grain <= 0 selects an automatic grain of ~8 chunks per worker.
  // `body` must not throw. Nested calls from inside a worker run the whole
  // range serially on the calling worker.
  void ParallelForChunks(int64_t begin, int64_t end, int64_t grain,
                         const std::function<void(int64_t, int64_t, int)>& body);

  // Sentinel returned by CurrentWorker() outside a parallel region. Callers
  // that index per-worker buffers must use CurrentWorkerSlot() (or the
  // worker id passed to their chunk body) instead of assuming a valid id.
  static constexpr int kNoWorker = -1;

  // Worker id of the current thread while inside a parallel region
  // (0..num_threads-1 of the pool running the region); kNoWorker outside.
  // Historically this returned 0 outside a region, silently aliasing worker
  // 0's slot in per-worker-indexed state; the sentinel makes that misuse
  // detectable (see util_test CurrentWorkerSentinel).
  static int CurrentWorker();

  // Shard index for per-worker-striped state (metrics shards): the worker id
  // inside a region, slot 0 outside. Foreign threads sharing slot 0 is the
  // documented contract of the metrics shards — they use fetch_add, so
  // aliasing costs contention, never correctness.
  static int CurrentWorkerSlot() {
    const int worker = CurrentWorker();
    return worker >= 0 ? worker : 0;
  }

  // True while executing inside a parallel region on this thread.
  static bool InParallelRegion();

  // Total number of chunks stolen since construction (telemetry for tests),
  // aggregated across the per-worker tallies.
  uint64_t steal_count() const;

  // Per-worker steal tallies (index = stealing worker's id).
  std::vector<uint64_t> StealCountsPerWorker() const;

 private:
  struct Chunk {
    int64_t begin;
    int64_t end;
  };
  // Per-worker chunk queue: chunks are preloaded before the region starts
  // and only consumed afterwards, so a lock-free atomic cursor suffices.
  struct alignas(64) WorkerQueue {
    std::vector<Chunk> chunks;
    std::atomic<int64_t> next{0};
  };

  // One cache line per worker: the steal path increments only the stealing
  // worker's own counter (a single shared atomic here was a contention point
  // during steal storms — every steal bounced the same line between cores).
  struct alignas(64) StealCounter {
    std::atomic<uint64_t> value{0};
  };

  void WorkerLoop(int worker_id);
  void RunRegion(int worker_id);

  int num_threads_;
  std::vector<std::thread> threads_;
  std::vector<WorkerQueue> queues_;

  std::mutex region_mutex_;  // serializes whole parallel regions
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;        // incremented per parallel region
  int pending_workers_ = 0;   // workers still running the current region
  bool shutdown_ = false;
  const std::function<void(int64_t, int64_t, int)>* body_ = nullptr;
  std::vector<StealCounter> steal_counts_;  // one per worker
};

// RAII binding of ThreadPool::Current() for the calling thread: parallel
// loops issued while the binding is alive dispatch on `pool` instead of the
// process-wide default. Bindings nest (the previous binding is restored on
// destruction) and are thread-local — binding a pool on a serving thread
// does not redirect any other thread's loops.
class ScopedPoolBinding {
 public:
  explicit ScopedPoolBinding(ThreadPool& pool);
  ~ScopedPoolBinding();

  ScopedPoolBinding(const ScopedPoolBinding&) = delete;
  ScopedPoolBinding& operator=(const ScopedPoolBinding&) = delete;

 private:
  ThreadPool* previous_;
};

}  // namespace egraph

#endif  // SRC_UTIL_THREAD_POOL_H_
