// Parallel primitives built on the work-stealing pool: element-wise loops,
// reductions, prefix sums, and cost-balanced chunking. These are the building
// blocks of every layout builder (count sort needs a parallel exclusive scan)
// and of the engine.
//
// Every primitive has two forms: an explicit-pool form taking the pool to
// dispatch on as its first argument, and a convenience form that resolves
// ThreadPool::Current() — the pool bound by the innermost execution context,
// falling back to the process-wide default. Library code never calls
// ThreadPool::Get() directly anymore; the default context is the only place
// the process-wide pool enters the picture, which is what lets concurrent
// query contexts run on disjoint worker sets.
#ifndef SRC_UTIL_PARALLEL_H_
#define SRC_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/util/thread_pool.h"

namespace egraph {

// Calls body(i) for every i in [begin, end), in parallel on `pool`.
template <typename Body>
void ParallelFor(ThreadPool& pool, int64_t begin, int64_t end, Body&& body) {
  pool.ParallelForChunks(begin, end, /*grain=*/0,
                         [&body](int64_t lo, int64_t hi, int /*worker*/) {
                           for (int64_t i = lo; i < hi; ++i) {
                             body(i);
                           }
                         });
}

template <typename Body>
void ParallelFor(int64_t begin, int64_t end, Body&& body) {
  ParallelFor(ThreadPool::Current(), begin, end, std::forward<Body>(body));
}

// Calls body(i) with an explicit chunk grain (work-distribution knob).
template <typename Body>
void ParallelForGrain(ThreadPool& pool, int64_t begin, int64_t end, int64_t grain,
                      Body&& body) {
  pool.ParallelForChunks(begin, end, grain,
                         [&body](int64_t lo, int64_t hi, int /*worker*/) {
                           for (int64_t i = lo; i < hi; ++i) {
                             body(i);
                           }
                         });
}

template <typename Body>
void ParallelForGrain(int64_t begin, int64_t end, int64_t grain, Body&& body) {
  ParallelForGrain(ThreadPool::Current(), begin, end, grain, std::forward<Body>(body));
}

// Calls body(chunk_begin, chunk_end, worker_id). Useful when the body keeps
// per-chunk scratch state (e.g. per-thread histograms in radix sort).
template <typename Body>
void ParallelForChunks(ThreadPool& pool, int64_t begin, int64_t end, int64_t grain,
                       Body&& body) {
  pool.ParallelForChunks(begin, end, grain,
                         [&body](int64_t lo, int64_t hi, int worker) {
                           body(lo, hi, worker);
                         });
}

template <typename Body>
void ParallelForChunks(int64_t begin, int64_t end, int64_t grain, Body&& body) {
  ParallelForChunks(ThreadPool::Current(), begin, end, grain, std::forward<Body>(body));
}

// Parallel sum-reduction of body(i) over [begin, end).
template <typename T, typename Body>
T ParallelReduceSum(ThreadPool& pool, int64_t begin, int64_t end, Body&& body) {
  std::vector<T> partial(static_cast<size_t>(pool.num_threads()), T{});
  pool.ParallelForChunks(begin, end, /*grain=*/0,
                         [&body, &partial](int64_t lo, int64_t hi, int worker) {
                           T local{};
                           for (int64_t i = lo; i < hi; ++i) {
                             local += body(i);
                           }
                           partial[static_cast<size_t>(worker)] += local;
                         });
  T total{};
  for (const T& value : partial) {
    total += value;
  }
  return total;
}

template <typename T, typename Body>
T ParallelReduceSum(int64_t begin, int64_t end, Body&& body) {
  return ParallelReduceSum<T>(ThreadPool::Current(), begin, end, std::forward<Body>(body));
}

// Fixed block size of the deterministic reduction below. A power of two big
// enough that the per-block partial vector stays small next to the data.
inline constexpr int64_t kDeterministicReduceBlock = 4096;

// Pool-size-independent parallel sum: the range is cut into fixed-size
// blocks (kDeterministicReduceBlock, NOT per-worker chunks), each block is
// summed left to right, and the block partials are combined in block order
// on the caller. The result is a pure function of the input — unlike
// ParallelReduceSum, whose per-worker partial grouping (and therefore its
// float rounding) changes with the pool width. Use for floating-point
// accumulations that must be bit-identical across execution contexts of
// different sizes (e.g. the serve layer re-running one query's reduction
// under a differently-sized pool must reproduce it exactly).
template <typename T, typename Body>
T ParallelReduceSumDeterministic(ThreadPool& pool, int64_t begin, int64_t end,
                                 Body&& body) {
  const int64_t n = end - begin;
  if (n <= 0) {
    return T{};
  }
  const int64_t blocks =
      (n + kDeterministicReduceBlock - 1) / kDeterministicReduceBlock;
  std::vector<T> partial(static_cast<size_t>(blocks), T{});
  ParallelFor(pool, 0, blocks, [&body, &partial, begin, end](int64_t b) {
    const int64_t lo = begin + b * kDeterministicReduceBlock;
    const int64_t hi = std::min(end, lo + kDeterministicReduceBlock);
    T local{};
    for (int64_t i = lo; i < hi; ++i) {
      local += body(i);
    }
    partial[static_cast<size_t>(b)] = local;
  });
  T total{};
  for (const T& value : partial) {
    total += value;
  }
  return total;
}

template <typename T, typename Body>
T ParallelReduceSumDeterministic(int64_t begin, int64_t end, Body&& body) {
  return ParallelReduceSumDeterministic<T>(ThreadPool::Current(), begin, end,
                                           std::forward<Body>(body));
}

// Parallel max-reduction of body(i) over [begin, end); returns `init` when
// the range is empty.
template <typename T, typename Body>
T ParallelReduceMax(ThreadPool& pool, int64_t begin, int64_t end, T init, Body&& body) {
  std::vector<T> partial(static_cast<size_t>(pool.num_threads()), init);
  pool.ParallelForChunks(begin, end, /*grain=*/0,
                         [&body, &partial](int64_t lo, int64_t hi, int worker) {
                           T local = partial[static_cast<size_t>(worker)];
                           for (int64_t i = lo; i < hi; ++i) {
                             T candidate = body(i);
                             if (local < candidate) {
                               local = candidate;
                             }
                           }
                           partial[static_cast<size_t>(worker)] = local;
                         });
  T best = init;
  for (const T& value : partial) {
    if (best < value) {
      best = value;
    }
  }
  return best;
}

template <typename T, typename Body>
T ParallelReduceMax(int64_t begin, int64_t end, T init, Body&& body) {
  return ParallelReduceMax<T>(ThreadPool::Current(), begin, end, init,
                              std::forward<Body>(body));
}

template <typename T>
T ParallelExclusiveScan(ThreadPool& pool, std::vector<T>& values);

template <typename T>
T ParallelExclusiveScan(std::vector<T>& values) {
  return ParallelExclusiveScan(ThreadPool::Current(), values);
}

// --- Cost-balanced chunking -------------------------------------------------
//
// Fixed-grain chunking splits an index range into equal *counts* of items;
// on skewed per-item costs (power-law degrees) one chunk can hold almost all
// of the work and serialize the loop. The helpers below split by equal
// *cost* instead: a parallel prefix sum over per-item costs turns balancing
// into binary searches for the chunk boundaries, and the chunks then ride
// the work-stealing pool as single work items (grain=1) so a straggler can
// still be stolen around.

// Chunks per worker for a balanced dispatch: enough granularity for the
// stealing to smooth residual imbalance without drowning in dispatch cost.
inline constexpr int64_t kBalancedChunksPerWorker = 8;

// Number of chunks for `total_cost` units of work: aims at
// kBalancedChunksPerWorker chunks per pool worker but never lets a chunk
// fall under `min_chunk_cost` (tiny frontiers should not shatter into
// per-item dispatches). Always >= 1.
inline int64_t BalancedChunkCount(const ThreadPool& pool, uint64_t total_cost,
                                  int64_t min_chunk_cost) {
  const int64_t max_chunks =
      static_cast<int64_t>(pool.num_threads()) * kBalancedChunksPerWorker;
  if (min_chunk_cost < 1) {
    min_chunk_cost = 1;
  }
  const int64_t by_cost =
      static_cast<int64_t>(total_cost / static_cast<uint64_t>(min_chunk_cost));
  return std::max<int64_t>(1, std::min(max_chunks, by_cost));
}

inline int64_t BalancedChunkCount(uint64_t total_cost, int64_t min_chunk_cost) {
  return BalancedChunkCount(ThreadPool::Current(), total_cost, min_chunk_cost);
}

// Item-aligned balanced chunk boundaries. `pos(i)` must be the monotonically
// non-decreasing cumulative cost before item i, with pos(0) == 0 and
// pos(n) == total cost (an exclusive prefix sum with a total sentinel — a
// CSR offsets array is exactly this shape). Returns num_chunks + 1
// boundaries b with b[0] == 0 and b[num_chunks] == n; chunk c covers items
// [b[c], b[c+1]) and carries ~total/num_chunks cost (exactly, up to the
// granularity of a single item: an item is never split). Boundary c is the
// first item whose cumulative cost reaches c * ceil(total/num_chunks),
// found by binary search.
template <typename Pos>
std::vector<int64_t> BalancedChunkBoundaries(int64_t n, int64_t num_chunks, Pos&& pos) {
  if (num_chunks < 1) {
    num_chunks = 1;
  }
  std::vector<int64_t> bounds(static_cast<size_t>(num_chunks) + 1, 0);
  bounds[static_cast<size_t>(num_chunks)] = n;
  const uint64_t total = static_cast<uint64_t>(pos(n));
  const uint64_t target =
      (total + static_cast<uint64_t>(num_chunks) - 1) / static_cast<uint64_t>(num_chunks);
  for (int64_t c = 1; c < num_chunks; ++c) {
    const uint64_t want = static_cast<uint64_t>(c) * target;
    // First i with pos(i) >= want; starts at the previous boundary so the
    // boundaries are non-decreasing even on plateaus of zero-cost items.
    int64_t lo = bounds[static_cast<size_t>(c) - 1];
    int64_t hi = n;
    while (lo < hi) {
      const int64_t mid = lo + (hi - lo) / 2;
      if (static_cast<uint64_t>(pos(mid)) < want) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    bounds[static_cast<size_t>(c)] = lo;
  }
  return bounds;
}

// Dispatches pre-computed chunk boundaries on the pool, one chunk per work
// item. body(chunk_begin, chunk_end, worker_id); empty chunks are skipped.
template <typename Body>
void ParallelForBalancedChunks(ThreadPool& pool, const std::vector<int64_t>& bounds,
                               Body&& body) {
  const int64_t num_chunks = static_cast<int64_t>(bounds.size()) - 1;
  pool.ParallelForChunks(
      0, num_chunks, /*grain=*/1, [&bounds, &body](int64_t lo, int64_t hi, int worker) {
        for (int64_t c = lo; c < hi; ++c) {
          const int64_t begin = bounds[static_cast<size_t>(c)];
          const int64_t end = bounds[static_cast<size_t>(c) + 1];
          if (begin < end) {
            body(begin, end, worker);
          }
        }
      });
}

template <typename Body>
void ParallelForBalancedChunks(const std::vector<int64_t>& bounds, Body&& body) {
  ParallelForBalancedChunks(ThreadPool::Current(), bounds, std::forward<Body>(body));
}

// Cost-balanced parallel loop: calls body(chunk_begin, chunk_end, worker_id)
// over [0, n) with chunk boundaries chosen so every chunk carries roughly
// equal total cost(i) (item-aligned; single items are never split). Builds
// the cost prefix with the parallel exclusive scan, finds boundaries by
// binary search, and dispatches chunks as stealable grain-1 work items.
// `min_chunk_cost` bounds the dispatch overhead on small inputs.
template <typename Cost, typename Body>
void ParallelForEdgeBalanced(ThreadPool& pool, int64_t n, int64_t min_chunk_cost,
                             Cost&& cost, Body&& body) {
  if (n <= 0) {
    return;
  }
  std::vector<uint64_t> prefix(static_cast<size_t>(n));
  ParallelFor(pool, 0, n, [&prefix, &cost](int64_t i) {
    prefix[static_cast<size_t>(i)] = static_cast<uint64_t>(cost(i));
  });
  const uint64_t total = ParallelExclusiveScan(pool, prefix);
  const std::vector<int64_t> bounds = BalancedChunkBoundaries(
      n, BalancedChunkCount(pool, total, min_chunk_cost),
      [&prefix, n, total](int64_t i) { return i < n ? prefix[static_cast<size_t>(i)] : total; });
  ParallelForBalancedChunks(pool, bounds, body);
}

template <typename Cost, typename Body>
void ParallelForEdgeBalanced(int64_t n, int64_t min_chunk_cost, Cost&& cost, Body&& body) {
  ParallelForEdgeBalanced(ThreadPool::Current(), n, min_chunk_cost,
                          std::forward<Cost>(cost), std::forward<Body>(body));
}

// In-place parallel exclusive prefix sum over `values`; returns the grand
// total. Two-pass blocked scan: per-block sums, serial scan of block sums,
// then per-block local scans.
template <typename T>
T ParallelExclusiveScan(ThreadPool& pool, std::vector<T>& values) {
  const int64_t n = static_cast<int64_t>(values.size());
  if (n == 0) {
    return T{};
  }
  const int64_t blocks = pool.num_threads() * 4;
  const int64_t block_size = (n + blocks - 1) / blocks;

  std::vector<T> block_sums(static_cast<size_t>(blocks), T{});
  ParallelFor(pool, 0, blocks, [&](int64_t b) {
    const int64_t lo = b * block_size;
    const int64_t hi = lo + block_size < n ? lo + block_size : n;
    T sum{};
    for (int64_t i = lo; i < hi; ++i) {
      sum += values[static_cast<size_t>(i)];
    }
    block_sums[static_cast<size_t>(b)] = sum;
  });

  T running{};
  for (int64_t b = 0; b < blocks; ++b) {
    const T sum = block_sums[static_cast<size_t>(b)];
    block_sums[static_cast<size_t>(b)] = running;
    running += sum;
  }

  ParallelFor(pool, 0, blocks, [&](int64_t b) {
    const int64_t lo = b * block_size;
    const int64_t hi = lo + block_size < n ? lo + block_size : n;
    T prefix = block_sums[static_cast<size_t>(b)];
    for (int64_t i = lo; i < hi; ++i) {
      const T value = values[static_cast<size_t>(i)];
      values[static_cast<size_t>(i)] = prefix;
      prefix += value;
    }
  });
  return running;
}

}  // namespace egraph

#endif  // SRC_UTIL_PARALLEL_H_
