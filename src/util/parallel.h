// Parallel primitives built on the work-stealing pool: element-wise loops,
// reductions and prefix sums. These are the building blocks of every layout
// builder (count sort needs a parallel exclusive scan) and of the engine.
#ifndef SRC_UTIL_PARALLEL_H_
#define SRC_UTIL_PARALLEL_H_

#include <cstdint>
#include <vector>

#include "src/util/thread_pool.h"

namespace egraph {

// Calls body(i) for every i in [begin, end), in parallel.
template <typename Body>
void ParallelFor(int64_t begin, int64_t end, Body&& body) {
  ThreadPool::Get().ParallelForChunks(begin, end, /*grain=*/0,
                                      [&body](int64_t lo, int64_t hi, int /*worker*/) {
                                        for (int64_t i = lo; i < hi; ++i) {
                                          body(i);
                                        }
                                      });
}

// Calls body(i) with an explicit chunk grain (work-distribution knob).
template <typename Body>
void ParallelForGrain(int64_t begin, int64_t end, int64_t grain, Body&& body) {
  ThreadPool::Get().ParallelForChunks(begin, end, grain,
                                      [&body](int64_t lo, int64_t hi, int /*worker*/) {
                                        for (int64_t i = lo; i < hi; ++i) {
                                          body(i);
                                        }
                                      });
}

// Calls body(chunk_begin, chunk_end, worker_id). Useful when the body keeps
// per-chunk scratch state (e.g. per-thread histograms in radix sort).
template <typename Body>
void ParallelForChunks(int64_t begin, int64_t end, int64_t grain, Body&& body) {
  ThreadPool::Get().ParallelForChunks(begin, end, grain,
                                      [&body](int64_t lo, int64_t hi, int worker) {
                                        body(lo, hi, worker);
                                      });
}

// Parallel sum-reduction of body(i) over [begin, end).
template <typename T, typename Body>
T ParallelReduceSum(int64_t begin, int64_t end, Body&& body) {
  ThreadPool& pool = ThreadPool::Get();
  std::vector<T> partial(static_cast<size_t>(pool.num_threads()), T{});
  pool.ParallelForChunks(begin, end, /*grain=*/0,
                         [&body, &partial](int64_t lo, int64_t hi, int worker) {
                           T local{};
                           for (int64_t i = lo; i < hi; ++i) {
                             local += body(i);
                           }
                           partial[static_cast<size_t>(worker)] += local;
                         });
  T total{};
  for (const T& value : partial) {
    total += value;
  }
  return total;
}

// Parallel max-reduction of body(i) over [begin, end); returns `init` when
// the range is empty.
template <typename T, typename Body>
T ParallelReduceMax(int64_t begin, int64_t end, T init, Body&& body) {
  ThreadPool& pool = ThreadPool::Get();
  std::vector<T> partial(static_cast<size_t>(pool.num_threads()), init);
  pool.ParallelForChunks(begin, end, /*grain=*/0,
                         [&body, &partial](int64_t lo, int64_t hi, int worker) {
                           T local = partial[static_cast<size_t>(worker)];
                           for (int64_t i = lo; i < hi; ++i) {
                             T candidate = body(i);
                             if (local < candidate) {
                               local = candidate;
                             }
                           }
                           partial[static_cast<size_t>(worker)] = local;
                         });
  T best = init;
  for (const T& value : partial) {
    if (best < value) {
      best = value;
    }
  }
  return best;
}

// In-place parallel exclusive prefix sum over `values`; returns the grand
// total. Two-pass blocked scan: per-block sums, serial scan of block sums,
// then per-block local scans.
template <typename T>
T ParallelExclusiveScan(std::vector<T>& values) {
  const int64_t n = static_cast<int64_t>(values.size());
  if (n == 0) {
    return T{};
  }
  ThreadPool& pool = ThreadPool::Get();
  const int64_t blocks = pool.num_threads() * 4;
  const int64_t block_size = (n + blocks - 1) / blocks;

  std::vector<T> block_sums(static_cast<size_t>(blocks), T{});
  ParallelFor(0, blocks, [&](int64_t b) {
    const int64_t lo = b * block_size;
    const int64_t hi = lo + block_size < n ? lo + block_size : n;
    T sum{};
    for (int64_t i = lo; i < hi; ++i) {
      sum += values[static_cast<size_t>(i)];
    }
    block_sums[static_cast<size_t>(b)] = sum;
  });

  T running{};
  for (int64_t b = 0; b < blocks; ++b) {
    const T sum = block_sums[static_cast<size_t>(b)];
    block_sums[static_cast<size_t>(b)] = running;
    running += sum;
  }

  ParallelFor(0, blocks, [&](int64_t b) {
    const int64_t lo = b * block_size;
    const int64_t hi = lo + block_size < n ? lo + block_size : n;
    T prefix = block_sums[static_cast<size_t>(b)];
    for (int64_t i = lo; i < hi; ++i) {
      const T value = values[static_cast<size_t>(i)];
      values[static_cast<size_t>(i)] = prefix;
      prefix += value;
    }
  });
  return running;
}

}  // namespace egraph

#endif  // SRC_UTIL_PARALLEL_H_
