// Concurrent fixed-size bitmap: the dense frontier representation. Supports
// racy reads and atomic test-and-set, the two operations EdgeMap needs.
#ifndef SRC_UTIL_BITMAP_H_
#define SRC_UTIL_BITMAP_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace egraph {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(int64_t bits);

  void Resize(int64_t bits);

  int64_t size() const { return bits_; }

  // Clears all bits (parallel over words).
  void Clear();

  bool Get(int64_t index) const {
    return (words_[static_cast<size_t>(index >> 6)].load(std::memory_order_relaxed) >>
            (index & 63)) &
           1ULL;
  }

  // Raw 64-bit word (bits [word_index*64, word_index*64+64)). Lets read-only
  // scans batch membership tests: load the word once, test bits with plain
  // shifts while consecutive queries stay inside it (sorted adjacency lists
  // make that the common case in pull mode).
  uint64_t Word(int64_t word_index) const {
    return words_[static_cast<size_t>(word_index)].load(std::memory_order_relaxed);
  }

  int64_t num_words() const { return static_cast<int64_t>(words_.size()); }

  // Non-atomic set; safe when each bit is written by at most one thread or
  // races are benign (idempotent sets use SetAtomic instead).
  void Set(int64_t index) {
    words_[static_cast<size_t>(index >> 6)].fetch_or(1ULL << (index & 63),
                                                     std::memory_order_relaxed);
  }

  // Atomically sets the bit; returns true iff this call flipped it 0 -> 1.
  bool TestAndSet(int64_t index) {
    const uint64_t mask = 1ULL << (index & 63);
    const uint64_t old = words_[static_cast<size_t>(index >> 6)].fetch_or(
        mask, std::memory_order_relaxed);
    return (old & mask) == 0;
  }

  // Number of set bits (parallel).
  int64_t Count() const;

  // Appends the indices of all set bits to `out` (parallel-friendly order is
  // not guaranteed; output is sorted).
  void ToVector(std::vector<uint32_t>& out) const;

 private:
  int64_t bits_ = 0;
  std::vector<std::atomic<uint64_t>> words_;
};

}  // namespace egraph

#endif  // SRC_UTIL_BITMAP_H_
