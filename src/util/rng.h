// Deterministic, fast random number generation. Graph generators must be
// reproducible across runs and thread counts, so every parallel chunk seeds
// its own generator from (seed, index) via SplitMix64.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

namespace egraph {

// SplitMix64: statistically strong 64-bit mixer; ideal for turning an
// (arbitrary) seed into a stream of well-distributed values and for seeding
// other generators.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// xoshiro256**: fast general-purpose PRNG (Blackman & Vigna). One instance
// per thread/chunk; never shared between threads.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // the tiny modulo bias is irrelevant for graph generation.
    return static_cast<uint64_t>((static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  // Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(Next() >> 40) * 0x1.0p-24f; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace egraph

#endif  // SRC_UTIL_RNG_H_
