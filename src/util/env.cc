#include "src/util/env.h"

#include <cstdlib>
#include <thread>

namespace egraph {

int64_t EnvInt64(const char* name, int64_t def) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return def;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value) {
    return def;
  }
  return static_cast<int64_t>(parsed);
}

double EnvDouble(const char* name, double def) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return def;
  }
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value) {
    return def;
  }
  return parsed;
}

std::string EnvString(const char* name, const std::string& def) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return def;
  }
  return value;
}

int EnvThreadCount() {
  const int64_t requested = EnvInt64("EG_THREADS", 0);
  if (requested > 0) {
    return static_cast<int>(requested);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

int EnvBenchScale() { return static_cast<int>(EnvInt64("EG_SCALE", 18)); }

}  // namespace egraph
