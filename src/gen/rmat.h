// R-MAT recursive power-law graph generator (Chakrabarti et al., SDM'04) —
// the synthetic workload family of the paper (Table 1: RMAT-N has 2^N
// vertices and 2^(N+4) edges).
#ifndef SRC_GEN_RMAT_H_
#define SRC_GEN_RMAT_H_

#include <cstdint>

#include "src/graph/edge_list.h"

namespace egraph {

struct RmatOptions {
  int scale = 18;           // 2^scale vertices
  int edge_factor = 16;     // edges = edge_factor * vertices (paper: 2^(N+4))
  double a = 0.57;          // recursive quadrant probabilities (Graph500-like)
  double b = 0.19;
  double c = 0.19;          // d = 1 - a - b - c
  uint64_t seed = 42;
  bool scramble_ids = true; // permute vertex ids so id order carries no locality
};

// Generates the edge list in parallel; deterministic for a fixed seed
// regardless of thread count (each edge derives its RNG from (seed, index)).
EdgeList GenerateRmat(const RmatOptions& options);

}  // namespace egraph

#endif  // SRC_GEN_RMAT_H_
