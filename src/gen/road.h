// Road-network generator: the US-Road (DIMACS) proxy. Produces a 2-D lattice
// with randomly deleted links and occasional local diagonal shortcuts. This
// reproduces the two properties the paper attributes US-Road results to:
// high diameter (Theta(sqrt(V))) and uniformly small vertex degree (<= 8).
#ifndef SRC_GEN_ROAD_H_
#define SRC_GEN_ROAD_H_

#include <cstdint>

#include "src/graph/edge_list.h"

namespace egraph {

struct RoadOptions {
  uint32_t width = 1024;    // lattice width
  uint32_t height = 1024;   // lattice height
  double keep_prob = 0.95;  // probability a lattice link exists
  double diag_prob = 0.05;  // probability of a diagonal shortcut per cell
  uint64_t seed = 42;
  bool bidirectional = true;  // roads are two-way
};

// Generates the proxy road network. Vertex (x, y) has id y * width + x.
EdgeList GenerateRoad(const RoadOptions& options);

}  // namespace egraph

#endif  // SRC_GEN_ROAD_H_
