#include "src/gen/datasets.h"

#include <cmath>
#include <cstdio>

#include "src/gen/rmat.h"
#include "src/gen/road.h"
#include "src/graph/stats.h"
#include "src/util/env.h"

namespace egraph {

EdgeList DatasetRmat(int scale, uint64_t seed) {
  RmatOptions options;
  options.scale = scale;
  options.seed = seed;
  return GenerateRmat(options);
}

EdgeList DatasetTwitter(int scale, uint64_t seed) {
  RmatOptions options;
  options.scale = scale > 0 ? scale : EnvBenchScale();
  options.a = 0.65;  // heavier hubs than default R-MAT: Twitter-like skew
  options.b = 0.15;
  options.c = 0.15;
  options.edge_factor = 24;  // Twitter is denser than RMAT-N (ratio 24 vs 16)
  options.seed = seed;
  return GenerateRmat(options);
}

EdgeList DatasetUsRoad(int scale, uint64_t seed) {
  const int s = scale > 0 ? scale : EnvBenchScale();
  // Lattice with ~2^s vertices: side = 2^(s/2). Edge count ~= 2 links/vertex
  // kept bidirectional => avg degree ~4 directed edges/vertex (paper's
  // US-Road has 58M/23.9M ~ 2.4; close enough for the shape argument).
  const uint32_t side = static_cast<uint32_t>(std::llround(std::pow(2.0, s / 2.0)));
  RoadOptions options;
  options.width = side;
  options.height = side;
  options.seed = seed;
  return GenerateRoad(options);
}

BipartiteGraph DatasetNetflix(int scale, uint64_t seed) {
  const int s = scale > 0 ? scale : EnvBenchScale();
  BipartiteOptions options;
  // Netflix: 480k users, 17.7k items, 100M ratings (ratio ~208 ratings/user;
  // we keep users >> items and a high per-user average, scaled down).
  options.num_users = 1u << (s - 4);
  options.num_items = 1u << (s - 8);
  options.avg_ratings_per_user = 32;
  options.seed = seed;
  return GenerateBipartite(options);
}

std::string DescribeDataset(const std::string& name, const EdgeList& graph) {
  const GraphStats stats = ComputeStats(graph);
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%s: |V|=%u |E|=%llu avg_deg=%.1f max_out=%u top1%%share=%.2f", name.c_str(),
                stats.num_vertices, static_cast<unsigned long long>(stats.num_edges),
                stats.avg_degree, stats.max_out_degree, stats.top1pct_out_edge_share);
  return buffer;
}

}  // namespace egraph
