#include "src/gen/road.h"

#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace egraph {

EdgeList GenerateRoad(const RoadOptions& options) {
  const uint64_t width = options.width;
  const uint64_t height = options.height;
  const VertexId num_vertices = static_cast<VertexId>(width * height);

  // Pass 1 (parallel, per row): count edges so the output can be sized
  // exactly; pass 2 regenerates the same decisions (same per-row RNG) and
  // writes them. Determinism comes from seeding per row.
  const int64_t rows = static_cast<int64_t>(height);
  std::vector<uint64_t> row_counts(height, 0);

  auto for_each_row_edge = [&](uint64_t y, auto&& emit) {
    uint64_t stream = options.seed ^ (y * 0x9E3779B97F4A7C15ULL);
    Xoshiro256 rng(SplitMix64(stream));
    for (uint64_t x = 0; x < width; ++x) {
      const VertexId v = static_cast<VertexId>(y * width + x);
      // Right link.
      if (x + 1 < width && rng.NextDouble() < options.keep_prob) {
        emit(v, static_cast<VertexId>(v + 1));
      }
      // Down link.
      if (y + 1 < height && rng.NextDouble() < options.keep_prob) {
        emit(v, static_cast<VertexId>(v + width));
      }
      // Diagonal shortcut (down-right).
      if (x + 1 < width && y + 1 < height && rng.NextDouble() < options.diag_prob) {
        emit(v, static_cast<VertexId>(v + width + 1));
      }
    }
  };

  ParallelFor(0, rows, [&](int64_t y) {
    uint64_t count = 0;
    for_each_row_edge(static_cast<uint64_t>(y),
                      [&count](VertexId, VertexId) { ++count; });
    row_counts[static_cast<size_t>(y)] =
        count * (options.bidirectional ? 2 : 1);
  });

  std::vector<uint64_t> offsets(row_counts.begin(), row_counts.end());
  const uint64_t total = ParallelExclusiveScan(offsets);

  EdgeList graph;
  graph.set_num_vertices(num_vertices);
  graph.mutable_edges().resize(total);
  auto& edges = graph.mutable_edges();

  ParallelFor(0, rows, [&](int64_t y) {
    uint64_t cursor = offsets[static_cast<size_t>(y)];
    for_each_row_edge(static_cast<uint64_t>(y), [&](VertexId a, VertexId b) {
      edges[cursor++] = {a, b};
      if (options.bidirectional) {
        edges[cursor++] = {b, a};
      }
    });
  });
  return graph;
}

}  // namespace egraph
