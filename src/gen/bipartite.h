// Bipartite rating-graph generator: the Netflix proxy for ALS. Left side =
// users, right side = items; per-user rating counts follow a power law and
// item popularity is Zipf-distributed, as in real rating datasets.
//
// Vertex numbering: users occupy [0, num_users), items occupy
// [num_users, num_users + num_items). Edges run user -> item and carry the
// rating as edge weight.
#ifndef SRC_GEN_BIPARTITE_H_
#define SRC_GEN_BIPARTITE_H_

#include <cstdint>

#include "src/graph/edge_list.h"

namespace egraph {

struct BipartiteOptions {
  uint32_t num_users = 50000;
  uint32_t num_items = 2000;
  uint32_t avg_ratings_per_user = 20;
  double rating_min = 1.0;
  double rating_max = 5.0;
  // Rank of the latent model used to synthesize ratings; ALS with factor
  // dimension >= this rank should reach low RMSE (test invariant).
  int latent_rank = 4;
  uint64_t seed = 42;
};

struct BipartiteGraph {
  EdgeList edges;  // weighted, user -> item
  uint32_t num_users = 0;
  uint32_t num_items = 0;
};

BipartiteGraph GenerateBipartite(const BipartiteOptions& options);

}  // namespace egraph

#endif  // SRC_GEN_BIPARTITE_H_
