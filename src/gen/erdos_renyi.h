// Erdős–Rényi G(n, m) generator: uniform-degree control case used by tests
// and ablations to contrast with the power-law R-MAT family.
#ifndef SRC_GEN_ERDOS_RENYI_H_
#define SRC_GEN_ERDOS_RENYI_H_

#include <cstdint>

#include "src/graph/edge_list.h"

namespace egraph {

struct ErdosRenyiOptions {
  VertexId num_vertices = 1 << 16;
  EdgeIndex num_edges = 1 << 20;
  uint64_t seed = 42;
};

EdgeList GenerateErdosRenyi(const ErdosRenyiOptions& options);

}  // namespace egraph

#endif  // SRC_GEN_ERDOS_RENYI_H_
