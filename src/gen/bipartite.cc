#include "src/gen/bipartite.h"

#include <cmath>
#include <vector>

#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace egraph {
namespace {

// Samples an item index with an approximately Zipf(1.0) popularity
// distribution via inverse-CDF on u^k skewing.
uint32_t SampleItem(Xoshiro256& rng, uint32_t num_items) {
  // u^3 pushes mass toward low indices; cheap approximation of Zipf that is
  // adequate for reproducing "a subset of the graph is active per side".
  const double u = rng.NextDouble();
  const double skewed = u * u * u;
  uint32_t item = static_cast<uint32_t>(skewed * num_items);
  return item >= num_items ? num_items - 1 : item;
}

}  // namespace

BipartiteGraph GenerateBipartite(const BipartiteOptions& options) {
  BipartiteGraph out;
  out.num_users = options.num_users;
  out.num_items = options.num_items;

  // Synthesize ground-truth latent factors so that ratings have learnable
  // low-rank structure (ALS convergence is a test invariant, not luck).
  const int rank = options.latent_rank;
  std::vector<float> user_factors(static_cast<size_t>(options.num_users) * rank);
  std::vector<float> item_factors(static_cast<size_t>(options.num_items) * rank);
  {
    uint64_t stream = options.seed ^ 0xABCDEF123456ULL;
    Xoshiro256 rng(SplitMix64(stream));
    for (auto& f : user_factors) {
      f = rng.NextFloat();
    }
    for (auto& f : item_factors) {
      f = rng.NextFloat();
    }
  }

  // Per-user rating counts: power-law-ish via geometric mixture, mean approx
  // avg_ratings_per_user.
  std::vector<uint64_t> counts(options.num_users);
  ParallelFor(0, static_cast<int64_t>(options.num_users), [&](int64_t u) {
    uint64_t stream = options.seed + static_cast<uint64_t>(u) * 0x9E3779B97F4A7C15ULL;
    Xoshiro256 rng(SplitMix64(stream));
    const double heavy = rng.NextDouble() < 0.1 ? 4.0 : 0.667;
    uint64_t c = static_cast<uint64_t>(options.avg_ratings_per_user * heavy * rng.NextDouble() * 2);
    if (c == 0) {
      c = 1;
    }
    if (c > options.num_items) {
      c = options.num_items;
    }
    counts[static_cast<size_t>(u)] = c;
  });

  std::vector<uint64_t> offsets(counts.begin(), counts.end());
  const uint64_t total = ParallelExclusiveScan(offsets);

  out.edges.set_num_vertices(options.num_users + options.num_items);
  out.edges.mutable_edges().resize(total);
  out.edges.mutable_weights().resize(total);
  auto& edges = out.edges.mutable_edges();
  auto& weights = out.edges.mutable_weights();

  const float rating_span = static_cast<float>(options.rating_max - options.rating_min);
  ParallelFor(0, static_cast<int64_t>(options.num_users), [&](int64_t u) {
    uint64_t stream = options.seed + 0x1234 + static_cast<uint64_t>(u) * 0x9E3779B97F4A7C15ULL;
    Xoshiro256 rng(SplitMix64(stream));
    uint64_t cursor = offsets[static_cast<size_t>(u)];
    const uint64_t count = counts[static_cast<size_t>(u)];
    for (uint64_t r = 0; r < count; ++r) {
      const uint32_t item = SampleItem(rng, options.num_items);
      // Rating = normalized dot product of ground-truth factors + noise.
      float dot = 0.0f;
      for (int k = 0; k < rank; ++k) {
        dot += user_factors[static_cast<size_t>(u) * rank + k] *
               item_factors[static_cast<size_t>(item) * rank + k];
      }
      float rating = static_cast<float>(options.rating_min) +
                     rating_span * (dot / static_cast<float>(rank)) +
                     0.1f * (rng.NextFloat() - 0.5f);
      if (rating < static_cast<float>(options.rating_min)) {
        rating = static_cast<float>(options.rating_min);
      }
      if (rating > static_cast<float>(options.rating_max)) {
        rating = static_cast<float>(options.rating_max);
      }
      edges[cursor] = {static_cast<VertexId>(u),
                       static_cast<VertexId>(options.num_users + item)};
      weights[cursor] = rating;
      ++cursor;
    }
  });
  return out;
}

}  // namespace egraph
