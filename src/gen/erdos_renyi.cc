#include "src/gen/erdos_renyi.h"

#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace egraph {

EdgeList GenerateErdosRenyi(const ErdosRenyiOptions& options) {
  EdgeList graph;
  graph.set_num_vertices(options.num_vertices);
  graph.mutable_edges().resize(options.num_edges);
  auto& edges = graph.mutable_edges();
  const uint64_t n = options.num_vertices;

  ParallelForChunks(0, static_cast<int64_t>(options.num_edges), /*grain=*/1 << 14,
                    [&](int64_t lo, int64_t hi, int /*worker*/) {
                      uint64_t stream = options.seed ^ static_cast<uint64_t>(lo);
                      Xoshiro256 rng(SplitMix64(stream));
                      for (int64_t i = lo; i < hi; ++i) {
                        edges[static_cast<size_t>(i)] = {
                            static_cast<VertexId>(rng.NextBounded(n)),
                            static_cast<VertexId>(rng.NextBounded(n))};
                      }
                    });
  return graph;
}

}  // namespace egraph
