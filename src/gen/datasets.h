// Named dataset proxies matching the paper's Table 1, all derived from one
// EG_SCALE knob so the whole benchmark suite scales together.
//
//   Paper dataset      -> proxy here
//   RMAT-N             -> GenerateRmat(scale = N')        (N' = EG_SCALE + delta)
//   Twitter (62M/1.5G) -> R-MAT with stronger skew        (power law, low diameter)
//   US-Road (24M/58M)  -> 2-D lattice w/ shortcuts        (high diameter, degree <= 8)
//   Netflix (0.5M/100M)-> synthetic low-rank bipartite
#ifndef SRC_GEN_DATASETS_H_
#define SRC_GEN_DATASETS_H_

#include <string>

#include "src/gen/bipartite.h"
#include "src/graph/edge_list.h"

namespace egraph {

// RMAT-N proxy at the given scale.
EdgeList DatasetRmat(int scale, uint64_t seed = 42);

// Twitter-follower proxy: R-MAT with stronger hub skew (a=0.65).
// `scale` defaults to EG_SCALE when <= 0.
EdgeList DatasetTwitter(int scale = 0, uint64_t seed = 7);

// US-Road proxy: square lattice sized so edge count is comparable to
// RMAT(scale)/8 (road graphs are sparse: avg degree ~2.4 in DIMACS).
EdgeList DatasetUsRoad(int scale = 0, uint64_t seed = 11);

// Netflix proxy sized from scale.
BipartiteGraph DatasetNetflix(int scale = 0, uint64_t seed = 13);

// Human-readable one-line description for bench output.
std::string DescribeDataset(const std::string& name, const EdgeList& graph);

}  // namespace egraph

#endif  // SRC_GEN_DATASETS_H_
