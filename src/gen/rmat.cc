#include "src/gen/rmat.h"

#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace egraph {
namespace {

// Feistel-style permutation on [0, 2^scale) so that high-degree R-MAT
// vertices are not clustered at small ids (which would make id-ordered
// layouts artificially cache-friendly).
VertexId ScrambleId(VertexId v, int scale, uint64_t seed) {
  const uint32_t mask = (scale >= 32) ? 0xFFFFFFFFu : ((1u << scale) - 1);
  uint64_t x = (static_cast<uint64_t>(v) + seed) & mask;
  // Two rounds of multiply-xorshift confined to `scale` bits.
  for (int round = 0; round < 2; ++round) {
    x = (x * 0x9E3779B9u + seed) & mask;
    x ^= x >> (scale / 2 == 0 ? 1 : scale / 2);
    x &= mask;
  }
  return static_cast<VertexId>(x);
}

}  // namespace

EdgeList GenerateRmat(const RmatOptions& options) {
  const VertexId num_vertices = static_cast<VertexId>(1ULL << options.scale);
  const EdgeIndex num_edges =
      static_cast<EdgeIndex>(options.edge_factor) * static_cast<EdgeIndex>(num_vertices);

  EdgeList graph;
  graph.set_num_vertices(num_vertices);
  graph.mutable_edges().resize(num_edges);
  auto& edges = graph.mutable_edges();

  const double ab = options.a + options.b;
  const double a_norm = options.a / ab;
  const double c_over_cd = options.c / (1.0 - ab);

  ParallelForChunks(
      0, static_cast<int64_t>(num_edges), /*grain=*/1 << 14,
      [&](int64_t lo, int64_t hi, int /*worker*/) {
        for (int64_t i = lo; i < hi; ++i) {
          // Deterministic per-edge stream: independent of thread count.
          uint64_t stream = options.seed * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(i);
          Xoshiro256 rng(SplitMix64(stream));
          VertexId src = 0;
          VertexId dst = 0;
          for (int bit = options.scale - 1; bit >= 0; --bit) {
            // Jitter quadrant probabilities slightly per level (standard
            // R-MAT noise to avoid fractal staircase artifacts).
            const double noise = 0.9 + 0.2 * rng.NextDouble();
            const double ab_level = ab * noise > 1.0 ? 1.0 : ab * noise;
            const bool top = rng.NextDouble() < ab_level;
            const bool left = rng.NextDouble() < (top ? a_norm : c_over_cd);
            if (!top) {
              src |= 1u << bit;
            }
            if (!left) {
              dst |= 1u << bit;
            }
          }
          if (options.scramble_ids) {
            src = ScrambleId(src, options.scale, options.seed);
            dst = ScrambleId(dst, options.scale, options.seed * 31 + 7);
          }
          edges[static_cast<size_t>(i)] = {src, dst};
        }
      });
  return graph;
}

}  // namespace egraph
