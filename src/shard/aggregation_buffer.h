// Grappa-style message aggregation for cross-shard EdgeMap updates: instead
// of scattering one random remote write per edge (the striped-lock path's
// cache behaviour), a producer shard accumulates its updates for each remote
// shard into a bounded open batch and seals it — whole cache lines at a
// time — onto a spill list that the *owning* shard later drains and applies
// sequentially. The pattern is the RDMAAggregator's: per-producer message
// lists, capacity-triggered flushes, enqueue/flush statistics.
//
// Concurrency contract: ONE producer at a time calls Enqueue/Flush (the
// sharded kernels dispatch one task per source shard, so the (src,dst)
// buffer has a single producer per phase). Drain may run concurrently with
// the producer — it only touches sealed batches under the internal lock,
// never the producer-private open batch — which is what lets a streaming
// consumer start applying while the producer is still enqueueing.
#ifndef SRC_SHARD_AGGREGATION_BUFFER_H_
#define SRC_SHARD_AGGREGATION_BUFFER_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/graph/types.h"
#include "src/util/spinlock.h"

namespace egraph {

// One buffered cross-shard update. Padded to 16 bytes so a 64-byte cache
// line holds exactly four and a sealed batch is a whole number of lines.
struct ShardUpdate {
  VertexId src;
  VertexId dst;
  float weight;
  uint32_t pad = 0;
};
static_assert(sizeof(ShardUpdate) == 16, "ShardUpdate must pack 4 per cache line");

inline constexpr int kShardUpdatesPerCacheLine = 64 / static_cast<int>(sizeof(ShardUpdate));

// Default open-batch capacity: 256 updates = 4 KiB = 64 cache lines per
// flush, small enough to stay L1-resident while the producer fills it.
inline constexpr int kDefaultAggregationCapacity = 256;

class AggregationBuffer {
 public:
  explicit AggregationBuffer(int capacity = kDefaultAggregationCapacity)
      : capacity_(capacity < kShardUpdatesPerCacheLine ? kShardUpdatesPerCacheLine
                                                       : capacity) {}

  AggregationBuffer(AggregationBuffer&& other) noexcept
      : capacity_(other.capacity_),
        open_(std::move(other.open_)),
        spill_(std::move(other.spill_)),
        enqueued_(other.enqueued_.load(std::memory_order_relaxed)),
        flushed_(other.flushed_.load(std::memory_order_relaxed)),
        flush_batches_(other.flush_batches_.load(std::memory_order_relaxed)) {}

  int capacity() const { return capacity_; }

  // Producer side. Seals the open batch automatically when it reaches
  // capacity, so memory stays bounded no matter how many updates flow
  // through. The open batch allocates lazily: an (s,t) pair that never
  // carries an update costs sizeof(AggregationBuffer), not a reservation.
  void Enqueue(VertexId src, VertexId dst, float weight) {
    if (open_.capacity() == 0) {
      open_.reserve(static_cast<size_t>(capacity_));
    }
    open_.push_back(ShardUpdate{src, dst, weight});
    enqueued_.fetch_add(1, std::memory_order_relaxed);
    if (static_cast<int>(open_.size()) >= capacity_) {
      Seal();
    }
  }

  // Producer side: seals a partial open batch (end of a production phase).
  // Returns the occupancy the batch was sealed at (0 when nothing pending),
  // which the kernels feed to the buffer-occupancy histogram.
  size_t Flush() {
    const size_t occupancy = open_.size();
    if (occupancy != 0) {
      Seal();
    }
    return occupancy;
  }

  // Consumer side: applies fn(const ShardUpdate&) to every sealed update in
  // enqueue order and returns how many were applied. Safe concurrently with
  // the producer; updates still sitting in the open batch are not visible
  // until the producer flushes.
  template <typename Fn>
  int64_t Drain(Fn&& fn) {
    std::vector<std::vector<ShardUpdate>> batches;
    {
      SpinlockGuard guard(lock_);
      batches.swap(spill_);
    }
    int64_t applied = 0;
    for (const auto& batch : batches) {
      for (const ShardUpdate& update : batch) {
        fn(update);
      }
      applied += static_cast<int64_t>(batch.size());
    }
    return applied;
  }

  bool HasSealed() const {
    SpinlockGuard guard(lock_);
    return !spill_.empty();
  }

  // Updates currently in the producer-private open batch (occupancy probe).
  size_t OpenSize() const { return open_.size(); }

  // --- Grappa-style stats ---------------------------------------------------
  int64_t enqueued() const { return enqueued_.load(std::memory_order_relaxed); }
  int64_t flushed() const { return flushed_.load(std::memory_order_relaxed); }
  int64_t flush_batches() const { return flush_batches_.load(std::memory_order_relaxed); }

 private:
  void Seal() {
    std::vector<ShardUpdate> batch;
    batch.swap(open_);
    flushed_.fetch_add(static_cast<int64_t>(batch.size()), std::memory_order_relaxed);
    flush_batches_.fetch_add(1, std::memory_order_relaxed);
    SpinlockGuard guard(lock_);
    spill_.push_back(std::move(batch));
  }

  int capacity_;
  std::vector<ShardUpdate> open_;               // producer-private
  std::vector<std::vector<ShardUpdate>> spill_;  // sealed batches, lock-guarded
  mutable Spinlock lock_;
  std::atomic<int64_t> enqueued_{0};
  std::atomic<int64_t> flushed_{0};
  std::atomic<int64_t> flush_batches_{0};
};

}  // namespace egraph

#endif  // SRC_SHARD_AGGREGATION_BUFFER_H_
