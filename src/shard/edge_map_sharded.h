// Sharded EdgeMap backends: two-phase push with Grappa-style message
// aggregation, and an owner-partitioned pull.
//
// Push, phase 1 (scatter): one grain-1 task per source shard iterates that
// shard's frontier slice. Destinations the shard owns are updated with plain
// stores — task s is the only writer of shard-s vertex state in this phase —
// and remote destinations are enqueued into the (s, t) AggregationBuffer,
// which seals whole-cache-line batches as it fills. Push, phase 2 (apply):
// one grain-1 task per destination shard drains every inbound buffer and
// applies the batches as sequential plain stores. The barrier between the
// phases is the return of the phase-1 ParallelForChunks. Nothing in either
// phase takes a lock on vertex state: ownership replaces the striped-lock
// scatter of EdgeMapCsrPush, so EdgeMapOptions::sync is a no-op here
// (treated as Sync::kLockFree regardless of what the caller sets).
//
// The round-dedup bitmap is shared across phases and shards via the atomic
// Bitmap::TestAndSet — the one cross-shard write that remains, and it is
// idempotent. Balance::kEdge orders shard tasks by descending edge mass
// (the grid's column idiom: grain-1 dispatch turns the sorted order into a
// static greedy assignment); shards cannot be split — ownership is the
// point — so that is the whole balance story.
//
// TSan note: phase-2 plain Update stores may race benignly with nothing —
// phases are barrier-separated and each dst has one owner — but functors
// whose Cond reads neighbor state must use the same AtomicLoad discipline
// the pull kernels already rely on.
#ifndef SRC_SHARD_EDGE_MAP_SHARDED_H_
#define SRC_SHARD_EDGE_MAP_SHARDED_H_

#include <type_traits>
#include <utility>
#include <vector>

#include "src/engine/edge_map.h"
#include "src/engine/frontier.h"
#include "src/engine/options.h"
#include "src/layout/csr.h"
#include "src/obs/metrics.h"
#include "src/obs/timeline.h"
#include "src/shard/aggregation_buffer.h"
#include "src/shard/shard_metrics.h"
#include "src/shard/sharded_graph.h"
#include "src/util/bitmap.h"
#include "src/util/parallel.h"

namespace egraph {

namespace shard_internal {

// The S x S mesh of aggregation buffers for one kernel invocation. Buffer
// (s, t) has exactly one producer (the phase-1 task for shard s) and one
// consumer (the phase-2 task for shard t), which is what lets both sides
// run lock-free outside the brief seal/drain spill swap.
class BufferGrid {
 public:
  explicit BufferGrid(int num_shards, int capacity = kDefaultAggregationCapacity)
      : num_shards_(num_shards) {
    buffers_.reserve(static_cast<size_t>(num_shards) * static_cast<size_t>(num_shards));
    for (int i = 0; i < num_shards * num_shards; ++i) {
      buffers_.emplace_back(capacity);
    }
  }

  AggregationBuffer& At(int s, int t) {
    return buffers_[static_cast<size_t>(s) * static_cast<size_t>(num_shards_) +
                    static_cast<size_t>(t)];
  }

  // End-of-scatter flush for producer shard s: seals every partial batch in
  // row (s, *) and records occupancy samples off the hot path — the partial
  // seal's fill level per non-empty buffer, plus one full-capacity sample
  // for any buffer that sealed at least one full batch (so the histogram
  // reflects both regimes without a Record per sealed line group).
  void FlushRow(int s) {
    obs::Histogram& occupancy = ShardMetrics::Get().buffer_occupancy;
    for (int t = 0; t < num_shards_; ++t) {
      if (t == s) {
        continue;
      }
      AggregationBuffer& buffer = At(s, t);
      const bool sealed_full = buffer.flush_batches() > 0;
      const size_t partial = buffer.Flush();
      if (sealed_full) {
        occupancy.Record(buffer.capacity());
      }
      if (partial != 0) {
        occupancy.Record(static_cast<int64_t>(partial));
      }
    }
  }

  // One bulk counter publish per kernel instead of a fetch_add per edge.
  void PublishStats() const {
    int64_t enqueued = 0;
    int64_t flushed = 0;
    int64_t batches = 0;
    for (const AggregationBuffer& buffer : buffers_) {
      enqueued += buffer.enqueued();
      flushed += buffer.flushed();
      batches += buffer.flush_batches();
    }
    ShardMetrics& metrics = ShardMetrics::Get();
    metrics.enqueued.Add(enqueued);
    metrics.flushed.Add(flushed);
    metrics.flush_batches.Add(batches);
  }

  int num_shards() const { return num_shards_; }

 private:
  int num_shards_;
  std::vector<AggregationBuffer> buffers_;
};

// Shard task order under the balance knob: descending edge mass for kEdge
// (static greedy via grain-1 round-robin preload), natural order otherwise.
inline int ShardAt(const std::vector<int>& order, Balance balance, int64_t idx) {
  return balance == Balance::kEdge ? order[static_cast<size_t>(idx)]
                                   : static_cast<int>(idx);
}

}  // namespace shard_internal

// --- Sharded adjacency push (aggregated cross-shard flushes) ---------------
//
// Drop-in peer of EdgeMapCsrPush over the same out-CSR: same functor
// contract, same sparse next-frontier result, no locks anywhere on the
// update path. options.sync is ignored (ownership makes every apply
// exclusive); options.scratch serves the round bitmap and worker buffers
// exactly as in the plain kernel.
template <typename F>
Frontier EdgeMapShardedPush(const Csr& out, const ShardedGraph& shards, Frontier& frontier,
                            F& func, const EdgeMapOptions& options) {
  const VertexId n = out.num_vertices();
  const int num_shards = shards.num_shards();

  obs::EngineCounters& metrics = obs::EngineCounters::Get();
  metrics.edgemap_calls.Add(1);
  ShardMetrics& shard_metrics = ShardMetrics::Get();
  shard_metrics.edgemap_calls.Add(1);
  obs::TimelineSpan timeline_span("engine", "edgemap.sharded.push", frontier.Count());

  std::vector<Frontier> slices = frontier.SplitByRanges(shards.boundaries());

  const int workers = ThreadPool::Current().num_threads();
  Bitmap local_next;
  std::vector<std::vector<VertexId>> local_buffers;
  Bitmap* next_ptr;
  std::vector<std::vector<VertexId>>* buffers_ptr;
  if (options.scratch != nullptr) {
    next_ptr = &options.scratch->RoundBitmap(n);
    buffers_ptr = &options.scratch->WorkerBuffers(workers);
  } else {
    local_next.Resize(static_cast<int64_t>(n));
    local_buffers.resize(static_cast<size_t>(workers));
    next_ptr = &local_next;
    buffers_ptr = &local_buffers;
  }
  Bitmap& next = *next_ptr;
  std::vector<std::vector<VertexId>>& buffers = *buffers_ptr;

  shard_internal::BufferGrid grid(num_shards);

  auto run = [&](auto wtag) {
    constexpr bool kWeighted = decltype(wtag)::value;

    // Phase 1: scatter. Task s owns shard s's destinations; everything else
    // rides an aggregation buffer.
    ParallelForChunks(
        0, num_shards, /*grain=*/1, [&](int64_t lo, int64_t hi, int worker) {
          auto& buffer = buffers[static_cast<size_t>(worker)];
          for (int64_t idx = lo; idx < hi; ++idx) {
            const int s = shard_internal::ShardAt(shards.out_order(), options.balance, idx);
            Frontier& slice = slices[static_cast<size_t>(s)];
            if (slice.Empty()) {
              continue;  // no producer touched row s: nothing to flush either
            }
            const uint64_t span_start = obs::TimelineNow();
            int64_t scanned = 0;
            int64_t relaxed = 0;
            int64_t local_updates = 0;
            int64_t remote_updates = 0;
            for (const VertexId src : slice.Vertices()) {
              const auto neighbors = out.Neighbors(src);
              const auto weights = out.Weights(src);
              scanned += static_cast<int64_t>(neighbors.size());
              for (size_t j = 0; j < neighbors.size(); ++j) {
                const VertexId dst = neighbors[j];
                if (!func.Cond(dst)) {
                  continue;
                }
                const float w = kWeighted ? weights[j] : 1.0f;
                const int t = shards.ShardOf(dst);
                if (t == s) {
                  ++local_updates;
                  if (func.Update(src, dst, w)) {
                    ++relaxed;
                    if (next.TestAndSet(dst)) {
                      buffer.push_back(dst);
                    }
                  }
                } else {
                  ++remote_updates;
                  grid.At(s, t).Enqueue(src, dst, w);
                }
              }
            }
            grid.FlushRow(s);
            metrics.edges_scanned.Add(scanned);
            metrics.edges_relaxed.Add(relaxed);
            shard_metrics.local_updates.Add(local_updates);
            shard_metrics.remote_updates.Add(remote_updates);
            obs::TimelineEndSpan("engine", "edgemap.chunk", span_start, scanned);
          }
        });

    // Phase 2: apply. Task t is the only writer of shard t's state; every
    // drained batch lands as sequential plain stores on warm owner pages.
    ParallelForChunks(
        0, num_shards, /*grain=*/1, [&](int64_t lo, int64_t hi, int worker) {
          auto& buffer = buffers[static_cast<size_t>(worker)];
          for (int64_t idx = lo; idx < hi; ++idx) {
            const int t = shard_internal::ShardAt(shards.in_order(), options.balance, idx);
            const uint64_t span_start = obs::TimelineNow();
            int64_t relaxed = 0;
            int64_t applied = 0;
            for (int s = 0; s < num_shards; ++s) {
              if (s == t) {
                continue;
              }
              applied += grid.At(s, t).Drain([&](const ShardUpdate& update) {
                if (!func.Cond(update.dst)) {
                  return;
                }
                if (func.Update(update.src, update.dst, update.weight)) {
                  ++relaxed;
                  if (next.TestAndSet(update.dst)) {
                    buffer.push_back(update.dst);
                  }
                }
              });
            }
            metrics.edges_relaxed.Add(relaxed);
            obs::TimelineEndSpan("engine", "edgemap.chunk", span_start, applied);
          }
        });
  };
  if (out.has_weights()) {
    run(std::true_type{});
  } else {
    run(std::false_type{});
  }

  grid.PublishStats();
  return Frontier::FromVector(
      n, edge_map_internal::ConcatBuffers(buffers, /*retain_capacity=*/options.scratch != nullptr));
}

// --- Sharded adjacency pull (owner-partitioned gather) ---------------------
//
// Same gather loop as EdgeMapCsrPull (word-batched frontier probe, Cond
// early exit) but chunked by shard ownership: task t gathers exactly the
// destinations shard t owns, so the write pattern matches the sharded push
// and the balance knob reuses the precomputed in-edge mass order instead of
// a per-call offsets scan.
template <typename F>
Frontier EdgeMapShardedPull(const Csr& in, const ShardedGraph& shards, Frontier& frontier,
                            F& func, const EdgeMapOptions& options) {
  const VertexId n = in.num_vertices();
  frontier.EnsureDense();
  const int num_shards = shards.num_shards();

  obs::EngineCounters& metrics = obs::EngineCounters::Get();
  metrics.edgemap_calls.Add(1);
  ShardMetrics& shard_metrics = ShardMetrics::Get();
  shard_metrics.edgemap_calls.Add(1);
  obs::TimelineSpan timeline_span("engine", "edgemap.sharded.pull", frontier.Count());

  Bitmap next(n);  // ownership moves into the result; scratch cannot serve it
  const int workers = ThreadPool::Current().num_threads();
  std::vector<int64_t> counts(static_cast<size_t>(workers), 0);
  const Bitmap& active_bits = frontier.bitmap();

  auto run = [&](auto wtag) {
    constexpr bool kWeighted = decltype(wtag)::value;
    ParallelForChunks(
        0, num_shards, /*grain=*/1, [&](int64_t lo, int64_t hi, int worker) {
          for (int64_t idx = lo; idx < hi; ++idx) {
            const int t = shard_internal::ShardAt(shards.in_order(), options.balance, idx);
            const uint64_t span_start = obs::TimelineNow();
            int64_t local = 0;
            int64_t scanned = 0;
            int64_t relaxed = 0;
            int64_t cached_word_index = -1;
            uint64_t cached_word = 0;
            const int64_t v_lo = static_cast<int64_t>(shards.ShardBegin(t));
            const int64_t v_hi = static_cast<int64_t>(shards.ShardEnd(t));
            for (int64_t v = v_lo; v < v_hi; ++v) {
              const VertexId dst = static_cast<VertexId>(v);
              if (!func.Cond(dst)) {
                continue;
              }
              const auto neighbors = in.Neighbors(dst);
              const auto weights = in.Weights(dst);
              bool updated = false;
              for (size_t j = 0; j < neighbors.size(); ++j) {
                const VertexId src = neighbors[j];
                ++scanned;
                const int64_t word_index = static_cast<int64_t>(src >> 6);
                if (word_index != cached_word_index) {
                  cached_word_index = word_index;
                  cached_word = active_bits.Word(word_index);
                }
                if (((cached_word >> (src & 63)) & 1ULL) == 0) {
                  continue;
                }
                const float w = kWeighted ? weights[j] : 1.0f;
                if (func.Update(src, dst, w)) {
                  updated = true;
                  ++relaxed;
                }
                if (!func.Cond(dst)) {
                  break;  // early exit: dst is done for this round
                }
              }
              if (updated) {
                next.Set(v);
                ++local;
              }
            }
            counts[static_cast<size_t>(worker)] += local;
            shard_metrics.local_updates.Add(relaxed);  // every pull apply is owner-local
            metrics.edges_scanned.Add(scanned);
            metrics.edges_relaxed.Add(relaxed);
            obs::TimelineEndSpan("engine", "edgemap.chunk", span_start, scanned);
          }
        });
  };
  if (in.has_weights()) {
    run(std::true_type{});
  } else {
    run(std::false_type{});
  }

  int64_t total = 0;
  for (const int64_t c : counts) {
    total += c;
  }
  return Frontier::FromBitmap(n, std::move(next), total);
}

// --- Sharded dynamic push-pull (Beamer/Ligra over shards) ------------------
template <typename F>
Frontier EdgeMapShardedPushPull(const Csr& out, const Csr& in, const ShardedGraph& shards,
                                Frontier& frontier, F& func, const EdgeMapOptions& options,
                                const PushPullConfig& config, bool* used_pull = nullptr) {
  const uint64_t work = frontier.WorkEstimate(out);
  const bool pull = static_cast<double>(work) >
                    static_cast<double>(out.num_edges()) / config.threshold_den;
  if (used_pull != nullptr) {
    *used_pull = pull;
  }
  if (pull) {
    return EdgeMapShardedPull(in, shards, frontier, func, options);
  }
  return EdgeMapShardedPush(out, shards, frontier, func, options);
}

// --- Sharded all-active scans (PageRank / SpMV) ----------------------------
//
// The dense-iteration counterpart of EdgeMapShardedPush: every source is
// active, body(src, dst, weight) must be applied exactly once per edge, and
// each destination's applies are exclusive (plain adds suffice). Same
// two-phase shape — owner applies local edges during the scatter, remote
// edges ride the buffers and land in the owner's phase-2 drain.
template <typename Body>
void ShardScanBySource(const Csr& out, const ShardedGraph& shards, Body&& body) {
  const int num_shards = shards.num_shards();
  obs::TimelineSpan timeline_span("engine", "scan.sharded.src",
                                  static_cast<int64_t>(out.num_edges()));
  obs::Counter& scanned_counter = obs::EngineCounters::Get().edges_scanned;
  ShardMetrics& shard_metrics = ShardMetrics::Get();
  shard_metrics.edgemap_calls.Add(1);

  shard_internal::BufferGrid grid(num_shards);

  ParallelForChunks(0, num_shards, /*grain=*/1, [&](int64_t lo, int64_t hi, int /*worker*/) {
    for (int64_t idx = lo; idx < hi; ++idx) {
      const int s = shards.out_order()[static_cast<size_t>(idx)];
      int64_t scanned = 0;
      int64_t local_updates = 0;
      int64_t remote_updates = 0;
      const int64_t v_lo = static_cast<int64_t>(shards.ShardBegin(s));
      const int64_t v_hi = static_cast<int64_t>(shards.ShardEnd(s));
      for (int64_t v = v_lo; v < v_hi; ++v) {
        const VertexId src = static_cast<VertexId>(v);
        const auto neighbors = out.Neighbors(src);
        const auto weights = out.Weights(src);
        scanned += static_cast<int64_t>(neighbors.size());
        for (size_t j = 0; j < neighbors.size(); ++j) {
          const VertexId dst = neighbors[j];
          const float w = weights.empty() ? 1.0f : weights[j];
          const int t = shards.ShardOf(dst);
          if (t == s) {
            ++local_updates;
            body(src, dst, w);
          } else {
            ++remote_updates;
            grid.At(s, t).Enqueue(src, dst, w);
          }
        }
      }
      grid.FlushRow(s);
      scanned_counter.Add(scanned);
      shard_metrics.local_updates.Add(local_updates);
      shard_metrics.remote_updates.Add(remote_updates);
    }
  });

  ParallelForChunks(0, num_shards, /*grain=*/1, [&](int64_t lo, int64_t hi, int /*worker*/) {
    for (int64_t idx = lo; idx < hi; ++idx) {
      const int t = shards.in_order()[static_cast<size_t>(idx)];
      for (int s = 0; s < num_shards; ++s) {
        if (s == t) {
          continue;
        }
        grid.At(s, t).Drain([&](const ShardUpdate& update) {
          body(update.src, update.dst, update.weight);
        });
      }
    }
  });

  grid.PublishStats();
}

// Owner-partitioned dense gather: body(dst, in_neighbors, weights) once per
// destination, iterated in ascending dst within each shard — the identical
// per-destination order to ScanCsrByDestination, so floating-point gather
// sums (PageRank, SpMV) are bit-identical to the plain pull backend.
template <typename Body>
void ShardScanByDestination(const Csr& in, const ShardedGraph& shards, Body&& body) {
  const int num_shards = shards.num_shards();
  obs::TimelineSpan timeline_span("engine", "scan.sharded.dst",
                                  static_cast<int64_t>(in.num_edges()));
  obs::Counter& scanned_counter = obs::EngineCounters::Get().edges_scanned;
  ShardMetrics& shard_metrics = ShardMetrics::Get();
  shard_metrics.edgemap_calls.Add(1);

  ParallelForChunks(0, num_shards, /*grain=*/1, [&](int64_t lo, int64_t hi, int /*worker*/) {
    for (int64_t idx = lo; idx < hi; ++idx) {
      const int t = shards.in_order()[static_cast<size_t>(idx)];
      int64_t scanned = 0;
      const int64_t v_lo = static_cast<int64_t>(shards.ShardBegin(t));
      const int64_t v_hi = static_cast<int64_t>(shards.ShardEnd(t));
      for (int64_t v = v_lo; v < v_hi; ++v) {
        const VertexId dst = static_cast<VertexId>(v);
        scanned += static_cast<int64_t>(in.Neighbors(dst).size());
        body(dst, in.Neighbors(dst), in.Weights(dst));
      }
      scanned_counter.Add(scanned);
    }
  });
}

}  // namespace egraph

#endif  // SRC_SHARD_EDGE_MAP_SHARDED_H_
