// Hot-path observability for the sharded substrate, resolved once per
// process like obs::EngineCounters. The enqueue/flush counters mirror the
// RDMAAggregator's stats; local/remote splits feed the shard.local_ratio
// gauge the Prometheus exposition derives, and the occupancy histogram
// records how full open batches were when sealed (a low mean means the
// shard count outruns the traffic and flushes are mostly partial).
#ifndef SRC_SHARD_SHARD_METRICS_H_
#define SRC_SHARD_SHARD_METRICS_H_

#include <vector>

#include "src/obs/exposition.h"
#include "src/obs/metrics.h"

namespace egraph {

struct ShardMetrics {
  obs::Counter& edgemap_calls;      // sharded EdgeMap / scan invocations
  obs::Counter& enqueued;           // updates entering aggregation buffers
  obs::Counter& flushed;            // updates sealed into spill batches
  obs::Counter& flush_batches;      // sealed batches (whole cache-line groups)
  obs::Counter& local_updates;      // applied directly by the source's shard
  obs::Counter& remote_updates;     // routed through a buffer to the owner
  obs::Histogram& buffer_occupancy;  // open-batch fill at seal time

  static ShardMetrics& Get();
};

// Fraction of updates applied shard-locally since process start; 1.0 when
// nothing has run. This is the gauge behind `shard.local_ratio`.
double ShardLocalRatio();

// Gauges for the stats exposition: shard.local_ratio (counters and the
// occupancy histogram flow through the registry snapshots on their own).
std::vector<obs::GaugeSample> ShardGauges();

}  // namespace egraph

#endif  // SRC_SHARD_SHARD_METRICS_H_
