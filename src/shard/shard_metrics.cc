#include "src/shard/shard_metrics.h"

namespace egraph {

ShardMetrics& ShardMetrics::Get() {
  static ShardMetrics metrics{
      obs::Registry::Get().GetCounter("shard.edgemap_calls"),
      obs::Registry::Get().GetCounter("shard.enqueued"),
      obs::Registry::Get().GetCounter("shard.flushed"),
      obs::Registry::Get().GetCounter("shard.flush_batches"),
      obs::Registry::Get().GetCounter("shard.local_updates"),
      obs::Registry::Get().GetCounter("shard.remote_updates"),
      obs::Registry::Get().GetHistogram("shard.buffer_occupancy"),
  };
  return metrics;
}

double ShardLocalRatio() {
  ShardMetrics& metrics = ShardMetrics::Get();
  const int64_t local = metrics.local_updates.Total();
  const int64_t remote = metrics.remote_updates.Total();
  const int64_t total = local + remote;
  return total == 0 ? 1.0 : static_cast<double>(local) / static_cast<double>(total);
}

std::vector<obs::GaugeSample> ShardGauges() {
  return {{"shard.local_ratio", ShardLocalRatio()}};
}

}  // namespace egraph
