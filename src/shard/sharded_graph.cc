#include "src/shard/sharded_graph.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/obs/phase.h"
#include "src/util/parallel.h"
#include "src/util/timer.h"

namespace egraph {

int ShardedGraph::AutoShards(int workers) {
  return std::clamp(2 * workers, 2, 64);
}

ShardedGraph ShardedGraph::Build(const Csr& out, const Csr* in, int num_shards) {
  obs::ScopedPhase phase(obs::Phase::kPartition);
  obs::Registry::Get().GetCounter("shard.builds").Add(1);
  Timer timer;
  ShardedGraph sharded;
  const VertexId n = out.num_vertices();
  if (num_shards < 1) {
    num_shards = 1;
  }

  std::vector<uint64_t> score(static_cast<size_t>(n));
  ParallelFor(0, static_cast<int64_t>(n), [&](int64_t v) {
    uint64_t s = 1 + out.Degree(static_cast<VertexId>(v));
    if (in != nullptr) {
      s += in->Degree(static_cast<VertexId>(v));
    }
    score[static_cast<size_t>(v)] = s;
  });
  sharded.boundaries_ = BalancedVertexRanges(score, num_shards);

  sharded.out_mass_.assign(static_cast<size_t>(num_shards), 0);
  sharded.in_mass_.assign(static_cast<size_t>(num_shards), 0);
  const auto& out_offsets = out.offsets();
  for (int s = 0; s < num_shards; ++s) {
    const size_t lo = static_cast<size_t>(sharded.boundaries_[static_cast<size_t>(s)]);
    const size_t hi = static_cast<size_t>(sharded.boundaries_[static_cast<size_t>(s) + 1]);
    sharded.out_mass_[static_cast<size_t>(s)] =
        static_cast<uint64_t>(out_offsets[hi]) - static_cast<uint64_t>(out_offsets[lo]);
    if (in != nullptr) {
      const auto& in_offsets = in->offsets();
      sharded.in_mass_[static_cast<size_t>(s)] =
          static_cast<uint64_t>(in_offsets[hi]) - static_cast<uint64_t>(in_offsets[lo]);
    }
  }

  auto order_by_mass = [num_shards](const std::vector<uint64_t>& mass) {
    std::vector<int> order(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      order[static_cast<size_t>(s)] = s;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&mass](int a, int b) {
                       return mass[static_cast<size_t>(a)] > mass[static_cast<size_t>(b)];
                     });
    return order;
  };
  sharded.out_order_ = order_by_mass(sharded.out_mass_);
  sharded.in_order_ =
      in != nullptr ? order_by_mass(sharded.in_mass_) : sharded.out_order_;

  sharded.build_seconds_ = timer.Seconds();
  return sharded;
}

}  // namespace egraph
