// ShardedGraph: the ownership map of the sharded execution substrate.
// The frozen CSR's vertex space is split into S contiguous shards using the
// same balanced-range machinery the NUMA cost model uses (BuildRangePartition
// in src/layout/range_partition.h — refactored out of src/numa/ so that cost
// model became one consumer among several, and this substrate another).
// Each shard is owned by one worker-group task per EdgeMap phase: a shard's
// vertex state is written only by its owner, so every apply is a plain
// store — cross-shard traffic flows through AggregationBuffers instead of
// striped locks.
//
// The shards index into the handle's existing global CSRs (sliced by vertex
// range) rather than materializing per-shard copies: the global out-CSR cut
// by source range drives the push scatter, the global in-CSR cut by
// destination range drives the owner-local gather, and both keep their edge
// weights — per-shard CSR copies would not (the dst-colocated rebuild drops
// weights, which is fine for the cost model but not for SSSP).
#ifndef SRC_SHARD_SHARDED_GRAPH_H_
#define SRC_SHARD_SHARDED_GRAPH_H_

#include <vector>

#include "src/graph/types.h"
#include "src/layout/csr.h"
#include "src/layout/range_partition.h"

namespace egraph {

class ShardedGraph {
 public:
  ShardedGraph() = default;

  // Partitions [0, out.num_vertices()) into `num_shards` contiguous shards
  // balanced by 1 + out_degree (+ in_degree when `in` is supplied): the
  // score is each vertex's cost in the phases that iterate it. `in` may be
  // null when only push will run.
  static ShardedGraph Build(const Csr& out, const Csr* in, int num_shards);

  // Default shard count for a worker pool: two shards per worker gives the
  // grain-1 shard dispatch room to steal around stragglers without
  // shattering the buffers into thousands of (s,t) pairs.
  static int AutoShards(int workers);

  int num_shards() const { return static_cast<int>(boundaries_.size()) - 1; }
  VertexId num_vertices() const { return boundaries_.empty() ? 0 : boundaries_.back(); }
  const std::vector<VertexId>& boundaries() const { return boundaries_; }

  // Shard owning vertex v — the same binary search the NUMA partition's
  // NodeOf now uses (RangeOwner replaced its per-edge linear scan).
  int ShardOf(VertexId v) const { return RangeOwner(boundaries_, v); }

  VertexId ShardBegin(int s) const { return boundaries_[static_cast<size_t>(s)]; }
  VertexId ShardEnd(int s) const { return boundaries_[static_cast<size_t>(s) + 1]; }

  // Out-edge mass of the shard's sources / in-edge mass of its destinations:
  // the phase-1 scatter and owner-gather costs used to order shard tasks.
  uint64_t ShardOutEdges(int s) const { return out_mass_[static_cast<size_t>(s)]; }
  uint64_t ShardInEdges(int s) const { return in_mass_[static_cast<size_t>(s)]; }

  // Shard indices in descending out-/in-edge mass: dispatched grain-1, the
  // pool's round-robin preload turns this into a static greedy assignment
  // (heaviest shards spread across workers first; stealing mops up the tail).
  const std::vector<int>& out_order() const { return out_order_; }
  const std::vector<int>& in_order() const { return in_order_; }

  // Wall time of the partitioning step (pre-processing accounting).
  double build_seconds() const { return build_seconds_; }

 private:
  std::vector<VertexId> boundaries_;  // num_shards + 1
  std::vector<uint64_t> out_mass_;
  std::vector<uint64_t> in_mass_;
  std::vector<int> out_order_;
  std::vector<int> in_order_;
  double build_seconds_ = 0.0;
};

}  // namespace egraph

#endif  // SRC_SHARD_SHARDED_GRAPH_H_
