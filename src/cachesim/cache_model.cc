#include "src/cachesim/cache_model.h"

#include <bit>
#include <cstddef>
#include <limits>

namespace egraph {
namespace {
constexpr uint64_t kEmpty = std::numeric_limits<uint64_t>::max();
}  // namespace

CacheModel::CacheModel(const CacheConfig& config) : config_(config) {
  line_shift_ = static_cast<uint32_t>(std::bit_width(config_.line_bytes) - 1);
  const uint64_t lines = config_.size_bytes / config_.line_bytes;
  num_sets_ = static_cast<uint32_t>(lines / config_.associativity);
  if (num_sets_ == 0) {
    num_sets_ = 1;
  }
  // Round sets down to a power of two for cheap indexing (hardware does the
  // same; the capacity difference is immaterial for ratio comparisons).
  num_sets_ = uint32_t{1} << (std::bit_width(num_sets_) - 1);
  tags_.assign(static_cast<size_t>(num_sets_) * config_.associativity, kEmpty);
  stamps_.assign(tags_.size(), 0);
}

bool CacheModel::Access(uint64_t addr) {
  const uint64_t line = addr >> line_shift_;
  const uint32_t set = static_cast<uint32_t>(line) & (num_sets_ - 1);
  const size_t base = static_cast<size_t>(set) * config_.associativity;
  ++tick_;

  size_t victim = base;
  uint64_t victim_stamp = kEmpty;
  for (size_t way = base; way < base + config_.associativity; ++way) {
    if (tags_[way] == line) {
      stamps_[way] = tick_;
      ++hits_;
      return true;
    }
    if (tags_[way] == kEmpty) {
      // Prefer an invalid way outright.
      victim = way;
      victim_stamp = 0;
    } else if (stamps_[way] < victim_stamp) {
      victim = way;
      victim_stamp = stamps_[way];
    }
  }
  tags_[victim] = line;
  stamps_[victim] = tick_;
  ++misses_;
  return false;
}

void CacheModel::AccessRange(uint64_t addr, uint64_t bytes) {
  const uint64_t first = addr >> line_shift_;
  const uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) >> line_shift_;
  for (uint64_t line = first; line <= last; ++line) {
    Access(line << line_shift_);
  }
}

}  // namespace egraph
