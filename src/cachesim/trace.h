// Memory-access trace replayers: feed the CacheModel the same access pattern
// each layout's inner loop performs, so LLC miss ratios can be reported
// without hardware counters.
//
// Every replay distinguishes the three access classes the paper identifies
// (section 5): fetching an edge, fetching source-vertex metadata, fetching
// destination-vertex metadata. `meta_bytes` is the per-vertex metadata
// footprint: ~1 byte for BFS (a cache line covers 64 vertices, per the
// paper) and ~10 bytes for Pagerank (a cache line fits ~6 vertices).
//
// Arrays live at disjoint virtual bases; addresses never collide across
// arrays. Replays are sequential (single simulated core): ratios, not
// throughput, are the output.
#ifndef SRC_CACHESIM_TRACE_H_
#define SRC_CACHESIM_TRACE_H_

#include <vector>

#include "src/cachesim/cache_model.h"
#include "src/graph/edge_list.h"
#include "src/layout/csr.h"
#include "src/layout/grid.h"

namespace egraph {

// --- Algorithm-pass traces (paper Table 4) --------------------------------

// One edge-centric pass over the edge array: streamed edges, random vertex
// metadata.
void TraceEdgeArrayPass(CacheModel& cache, const EdgeList& graph, uint32_t meta_bytes);

// One vertex-centric pass over an out-CSR: source metadata cached per
// vertex, streamed neighbor arrays, random destination metadata.
void TraceAdjacencyPass(CacheModel& cache, const Csr& out, uint32_t meta_bytes);

// One grid pass (row-major cells): while a cell is processed both endpoint
// blocks fit in cache, which is the mechanism behind the paper's halved miss
// ratio.
void TraceGridPass(CacheModel& cache, const Grid& grid, uint32_t meta_bytes);

// --- Concurrent-serve traces (fork-processing batch scheduler) ------------
//
// Model the LLC behaviour of `num_queries` concurrent whole-graph sweeps
// over one shared CSR. Per-query vertex metadata lives at disjoint bases
// (queries never share state); the offsets and neighbors arrays are shared
// (queries traverse one frozen handle). The two replays interleave the same
// per-vertex access sequence two ways:
//
//   Isolated — each query sweeps the full vertex range independently;
//   sweeps are interleaved chunk-round-robin with staggered start offsets,
//   approximating N unsynchronized workers. Every query streams the whole
//   edge array through the cache by itself.
//
//   Batched — queries advance partition-lockstep: all queries drain
//   partition p before any moves to p+1 (the boundaries come from
//   ComputeLlcPartitionBoundaries). The partition's slice of the shared
//   offsets/neighbors arrays stays resident while every query's pass over it
//   runs, so the cohort fetches it once instead of num_queries times.

void TraceServeIsolated(CacheModel& cache, const Csr& out, int num_queries,
                        uint32_t meta_bytes, VertexId chunk_vertices);

void TraceServeBatched(CacheModel& cache, const Csr& out, int num_queries,
                       uint32_t meta_bytes, const std::vector<VertexId>& boundaries);

// --- Pre-processing traces (paper Table 2) --------------------------------

// Dynamic adjacency building: streamed input, per-vertex append targets
// scattered across the heap.
void TraceDynamicBuild(CacheModel& cache, const EdgeList& graph);

// Count sort: counting pass (random degree increments) + placement pass
// (random scatter through per-vertex cursors).
void TraceCountSortBuild(CacheModel& cache, const EdgeList& graph);

// Radix sort: top-level digit split with 2^digit_bits sequentially-advancing
// bucket cursors, then per-bucket LSD passes.
void TraceRadixSortBuild(CacheModel& cache, const EdgeList& graph, int digit_bits = 8);

}  // namespace egraph

#endif  // SRC_CACHESIM_TRACE_H_
