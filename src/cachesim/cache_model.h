// Set-associative last-level-cache model with per-set LRU replacement.
// Substitute for hardware LLC-miss counters (unavailable in this VM): the
// paper's Tables 2 and 4 report LLC miss ratios to explain why radix sort
// and the grid layout win; we reproduce those ratios by replaying each code
// path's memory access trace through this model (see trace.h).
#ifndef SRC_CACHESIM_CACHE_MODEL_H_
#define SRC_CACHESIM_CACHE_MODEL_H_

#include <cstdint>
#include <vector>

namespace egraph {

struct CacheConfig {
  // Defaults mirror the paper's machine B: AMD Opteron 6272, 16 MB LLC.
  uint64_t size_bytes = 16ull << 20;
  uint32_t associativity = 16;
  uint32_t line_bytes = 64;
};

class CacheModel {
 public:
  explicit CacheModel(const CacheConfig& config = CacheConfig());

  // Simulates one access to byte address `addr`; returns true on hit.
  bool Access(uint64_t addr);

  // Simulates `bytes` consecutive bytes starting at `addr` (at most one
  // access per line touched).
  void AccessRange(uint64_t addr, uint64_t bytes);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t accesses() const { return hits_ + misses_; }
  double MissRatio() const {
    return accesses() == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(accesses());
  }

  void ResetCounters() {
    hits_ = 0;
    misses_ = 0;
  }

  const CacheConfig& config() const { return config_; }

 private:
  CacheConfig config_;
  uint32_t num_sets_ = 0;
  uint32_t line_shift_ = 0;
  // ways[set * associativity + way] = line tag; kEmpty when invalid.
  std::vector<uint64_t> tags_;
  // stamp[set * associativity + way] = last-use tick for LRU.
  std::vector<uint64_t> stamps_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace egraph

#endif  // SRC_CACHESIM_CACHE_MODEL_H_
