#include "src/cachesim/trace.h"

#include <algorithm>
#include <bit>
#include <vector>

namespace egraph {
namespace {

// Disjoint virtual address regions; replays never allocate real memory at
// these addresses.
constexpr uint64_t kEdgesBase = 0x1'0000'0000ULL;
constexpr uint64_t kMetaBase = 0x20'0000'0000ULL;
constexpr uint64_t kOffsetsBase = 0x30'0000'0000ULL;
constexpr uint64_t kNeighborsBase = 0x40'0000'0000ULL;
constexpr uint64_t kScratchBase = 0x50'0000'0000ULL;
constexpr uint64_t kCursorBase = 0x60'0000'0000ULL;
constexpr uint64_t kHeapBase = 0x1000'0000'0000ULL;

uint64_t MetaAddr(VertexId v, uint32_t meta_bytes) {
  return kMetaBase + static_cast<uint64_t>(v) * meta_bytes;
}

// Per-query vertex metadata for the serve replays: each concurrent query
// owns a private state array, placed in a fresh high region far above every
// shared-array base so queries never alias each other or the CSR.
constexpr uint64_t kServeMetaBase = 0x100'0000'0000ULL;
constexpr uint64_t kServeMetaStride = 0x10'0000'0000ULL;

uint64_t ServeMetaAddr(int query, VertexId v, uint32_t meta_bytes) {
  return kServeMetaBase + static_cast<uint64_t>(query) * kServeMetaStride +
         static_cast<uint64_t>(v) * meta_bytes;
}

// One query's adjacency pass over the vertex range [lo, hi): the same access
// classes as TraceAdjacencyPass, with the vertex metadata privatized to the
// query and the offsets/neighbors arrays shared across queries.
void ServeSweepRange(CacheModel& cache, const Csr& out, int query, uint32_t meta_bytes,
                     VertexId lo, VertexId hi) {
  for (VertexId v = lo; v < hi; ++v) {
    cache.Access(kOffsetsBase + static_cast<uint64_t>(v) * sizeof(EdgeIndex));
    const auto neighbors = out.Neighbors(v);
    if (neighbors.empty()) {
      continue;
    }
    cache.Access(ServeMetaAddr(query, v, meta_bytes));
    const uint64_t position = out.offsets()[v];
    for (size_t j = 0; j < neighbors.size(); ++j) {
      cache.Access(kNeighborsBase + (position + j) * sizeof(VertexId));
      cache.Access(ServeMetaAddr(query, neighbors[j], meta_bytes));
    }
  }
}

}  // namespace

void TraceEdgeArrayPass(CacheModel& cache, const EdgeList& graph, uint32_t meta_bytes) {
  const auto& edges = graph.edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    cache.Access(kEdgesBase + i * sizeof(Edge));
    cache.Access(MetaAddr(edges[i].src, meta_bytes));
    cache.Access(MetaAddr(edges[i].dst, meta_bytes));
  }
}

void TraceAdjacencyPass(CacheModel& cache, const Csr& out, uint32_t meta_bytes) {
  for (VertexId v = 0; v < out.num_vertices(); ++v) {
    cache.Access(kOffsetsBase + static_cast<uint64_t>(v) * sizeof(EdgeIndex));
    const auto neighbors = out.Neighbors(v);
    if (neighbors.empty()) {
      continue;
    }
    // Source metadata is fetched once and stays register/L1-resident for the
    // whole per-vertex loop.
    cache.Access(MetaAddr(v, meta_bytes));
    const uint64_t position = out.offsets()[v];
    for (size_t j = 0; j < neighbors.size(); ++j) {
      cache.Access(kNeighborsBase + (position + j) * sizeof(VertexId));
      cache.Access(MetaAddr(neighbors[j], meta_bytes));
    }
  }
}

void TraceGridPass(CacheModel& cache, const Grid& grid, uint32_t meta_bytes) {
  const uint32_t blocks = grid.num_blocks();
  for (uint32_t i = 0; i < blocks; ++i) {
    for (uint32_t j = 0; j < blocks; ++j) {
      const auto cell = grid.Cell(i, j);
      const uint64_t base = grid.cell_offsets()[grid.CellIndex(i, j)];
      for (size_t k = 0; k < cell.size(); ++k) {
        cache.Access(kEdgesBase + (base + k) * sizeof(Edge));
        cache.Access(MetaAddr(cell[k].src, meta_bytes));
        cache.Access(MetaAddr(cell[k].dst, meta_bytes));
      }
    }
  }
}

void TraceServeIsolated(CacheModel& cache, const Csr& out, int num_queries,
                        uint32_t meta_bytes, VertexId chunk_vertices) {
  const VertexId n = out.num_vertices();
  if (n == 0 || num_queries <= 0) {
    return;
  }
  if (chunk_vertices == 0) {
    chunk_vertices = 1;
  }
  // Each query sweeps all n vertices starting at its own offset (q * n / Q):
  // unsynchronized workers are spread across the graph, so one query's
  // freshly-fetched edge lines do NOT happen to serve the next query — which
  // is exactly the thrash the batched schedule removes. Chunks interleave
  // round-robin to model the sweeps progressing concurrently on one LLC.
  std::vector<VertexId> cursor(static_cast<size_t>(num_queries));
  for (int q = 0; q < num_queries; ++q) {
    cursor[static_cast<size_t>(q)] = static_cast<VertexId>(
        (static_cast<uint64_t>(q) * n) / static_cast<uint64_t>(num_queries));
  }
  std::vector<VertexId> remaining(static_cast<size_t>(num_queries), n);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (int q = 0; q < num_queries; ++q) {
      VertexId& left = remaining[static_cast<size_t>(q)];
      if (left == 0) {
        continue;
      }
      progressed = true;
      const VertexId take = std::min(chunk_vertices, left);
      VertexId v = cursor[static_cast<size_t>(q)];
      for (VertexId step = 0; step < take; ++step) {
        ServeSweepRange(cache, out, q, meta_bytes, v, v + 1);
        v = v + 1 == n ? 0 : v + 1;  // wrap: the sweep covers all of [0, n)
      }
      cursor[static_cast<size_t>(q)] = v;
      left -= take;
    }
  }
}

void TraceServeBatched(CacheModel& cache, const Csr& out, int num_queries,
                       uint32_t meta_bytes, const std::vector<VertexId>& boundaries) {
  if (out.num_vertices() == 0 || num_queries <= 0) {
    return;
  }
  // Partition-lockstep: every query's pass over partition p runs before any
  // query touches p+1, so the partition's slice of the shared CSR is fetched
  // by the first query and re-hit by the rest while still resident.
  for (size_t p = 0; p + 1 < boundaries.size(); ++p) {
    for (int q = 0; q < num_queries; ++q) {
      ServeSweepRange(cache, out, q, meta_bytes, boundaries[p], boundaries[p + 1]);
    }
  }
}

void TraceDynamicBuild(CacheModel& cache, const EdgeList& graph) {
  const auto& edges = graph.edges();
  // Each vertex's growable array lives in its own heap neighborhood; appends
  // to a vertex are adjacent, appends across vertices are far apart.
  std::vector<uint32_t> lengths(graph.num_vertices(), 0);
  for (size_t i = 0; i < edges.size(); ++i) {
    cache.Access(kEdgesBase + i * sizeof(Edge));
    const VertexId v = edges[i].src;
    // Vector header (size/capacity/pointer) then the append slot.
    cache.Access(kOffsetsBase + static_cast<uint64_t>(v) * 16);
    cache.Access(kHeapBase + static_cast<uint64_t>(v) * (1u << 16) +
                 static_cast<uint64_t>(lengths[v]) * sizeof(VertexId));
    ++lengths[v];
  }
}

void TraceCountSortBuild(CacheModel& cache, const EdgeList& graph) {
  const auto& edges = graph.edges();
  // Pass 1: degree counting (random increments).
  for (size_t i = 0; i < edges.size(); ++i) {
    cache.Access(kEdgesBase + i * sizeof(Edge));
    cache.Access(kCursorBase + static_cast<uint64_t>(edges[i].src) * sizeof(uint32_t));
  }
  // Offsets scan: sequential over V.
  cache.AccessRange(kOffsetsBase, (static_cast<uint64_t>(graph.num_vertices()) + 1) *
                                      sizeof(EdgeIndex));
  // Pass 2: placement through per-vertex cursors (random scatter).
  std::vector<uint64_t> degree(graph.num_vertices(), 0);
  for (const Edge& e : edges) {
    ++degree[e.src];
  }
  std::vector<uint64_t> cursor(graph.num_vertices() + 1, 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    cursor[v + 1] = cursor[v] + degree[v];
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    cache.Access(kEdgesBase + i * sizeof(Edge));
    const VertexId v = edges[i].src;
    cache.Access(kCursorBase + static_cast<uint64_t>(v) * sizeof(uint64_t));
    cache.Access(kNeighborsBase + cursor[v] * sizeof(VertexId));
    ++cursor[v];
  }
}

void TraceRadixSortBuild(CacheModel& cache, const EdgeList& graph, int digit_bits) {
  const auto& edges = graph.edges();
  const uint64_t n = graph.num_vertices();
  const int key_bits = n <= 1 ? 1 : std::bit_width(n - 1);
  const uint32_t radix = 1u << digit_bits;
  const uint32_t mask = radix - 1;
  const int top_shift = ((key_bits - 1) / digit_bits) * digit_bits;

  // Working key array; mirrors the real sort's record movement without
  // simulating full recursion bookkeeping.
  std::vector<VertexId> keys(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    keys[i] = edges[i].src;
  }

  bool in_primary = true;
  std::vector<VertexId> scratch(keys.size());
  for (int shift = top_shift; shift >= 0; shift -= digit_bits) {
    const uint64_t read_base = in_primary ? kEdgesBase : kScratchBase;
    const uint64_t write_base = in_primary ? kScratchBase : kEdgesBase;
    std::vector<uint64_t> counts(radix, 0);
    for (const VertexId key : keys) {
      ++counts[(key >> shift) & mask];
    }
    std::vector<uint64_t> cursors(radix, 0);
    uint64_t running = 0;
    for (uint32_t d = 0; d < radix; ++d) {
      cursors[d] = running;
      running += counts[d];
    }
    // Histogram pass: sequential read (the counter array is tiny and always
    // cached, so it is not traced).
    for (size_t i = 0; i < keys.size(); ++i) {
      cache.Access(read_base + i * sizeof(Edge));
    }
    // Scatter pass: sequential read, bucket-sequential write.
    const std::vector<VertexId>& src = keys;
    for (size_t i = 0; i < src.size(); ++i) {
      cache.Access(read_base + i * sizeof(Edge));
      const uint32_t d = (src[i] >> shift) & mask;
      cache.Access(write_base + cursors[d] * sizeof(Edge));
      scratch[cursors[d]] = src[i];
      ++cursors[d];
    }
    keys.swap(scratch);
    in_primary = !in_primary;
  }
}

}  // namespace egraph
