#include "src/obs/phase.h"

namespace egraph::obs {
namespace {

// Per-thread nesting depth per phase, for outermost-only accounting.
thread_local int t_phase_depth[kNumPhases] = {0, 0, 0, 0};

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kLoad:
      return "load";
    case Phase::kPreprocess:
      return "preprocess";
    case Phase::kPartition:
      return "partition";
    case Phase::kAlgorithm:
      return "algorithm";
  }
  return "?";
}

PhaseTimers& PhaseTimers::Get() {
  static PhaseTimers* timers = new PhaseTimers();
  return *timers;
}

void PhaseTimers::Add(Phase phase, double seconds) {
  std::lock_guard<std::mutex> guard(mutex_);
  seconds_[static_cast<int>(phase)] += seconds;
}

double PhaseTimers::Seconds(Phase phase) const {
  std::lock_guard<std::mutex> guard(mutex_);
  return seconds_[static_cast<int>(phase)];
}

void PhaseTimers::Reset() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (double& s : seconds_) {
    s = 0.0;
  }
}

TimingBreakdown PhaseTimers::ToBreakdown() const {
  std::lock_guard<std::mutex> guard(mutex_);
  TimingBreakdown breakdown;
  breakdown.load_seconds = seconds_[static_cast<int>(Phase::kLoad)];
  breakdown.preprocess_seconds = seconds_[static_cast<int>(Phase::kPreprocess)];
  breakdown.partition_seconds = seconds_[static_cast<int>(Phase::kPartition)];
  breakdown.algorithm_seconds = seconds_[static_cast<int>(Phase::kAlgorithm)];
  return breakdown;
}

ScopedPhase::ScopedPhase(Phase phase)
    : phase_(phase), outermost_(t_phase_depth[static_cast<int>(phase)] == 0) {
  ++t_phase_depth[static_cast<int>(phase_)];
}

ScopedPhase::~ScopedPhase() {
  --t_phase_depth[static_cast<int>(phase_)];
  if (outermost_) {
    PhaseTimers::Get().Add(phase_, timer_.Seconds());
  }
}

}  // namespace egraph::obs
