// Scoped phase timing matching the paper's end-to-end breakdown: loading,
// pre-processing, (NUMA) partitioning, algorithm. The library's own entry
// points (loader, GraphHandle::Prepare, PartitionGraph, every Run*) open
// the matching phase, so any binary can read a paper-style breakdown from
// the process without adding its own Timer calls.
//
// Phase accounting is off the hot path (a handful of events per run), so it
// stays active even under EGRAPH_METRICS=0.
#ifndef SRC_OBS_PHASE_H_
#define SRC_OBS_PHASE_H_

#include <mutex>

#include "src/engine/options.h"
#include "src/util/timer.h"

namespace egraph::obs {

enum class Phase {
  kLoad = 0,
  kPreprocess = 1,
  kPartition = 2,
  kAlgorithm = 3,
};

inline constexpr int kNumPhases = 4;

const char* PhaseName(Phase phase);

// Process-wide accumulated wall time per phase. Nested scopes of the same
// phase (e.g. Prepare called from inside a Run*) only count the outermost
// scope, so a phase's total never double-counts.
class PhaseTimers {
 public:
  static PhaseTimers& Get();

  void Add(Phase phase, double seconds);
  double Seconds(Phase phase) const;
  void Reset();

  // The paper's reporting struct, filled from the four accumulators.
  TimingBreakdown ToBreakdown() const;

 private:
  PhaseTimers() = default;

  mutable std::mutex mutex_;
  double seconds_[kNumPhases] = {0.0, 0.0, 0.0, 0.0};
};

// RAII phase scope; adds the elapsed wall time on destruction. Re-entrant
// per thread: inner scopes of the same phase contribute nothing.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase);
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Phase phase_;
  bool outermost_;
  Timer timer_;
};

}  // namespace egraph::obs

#endif  // SRC_OBS_PHASE_H_
