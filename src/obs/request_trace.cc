#include "src/obs/request_trace.h"

#include <cstdio>

namespace egraph::obs {

const char* BatchFallbackName(BatchFallback fallback) {
  switch (fallback) {
    case BatchFallback::kNone:
      return "none";
    case BatchFallback::kIsolatedMode:
      return "isolated-mode";
    case BatchFallback::kNotBatchable:
      return "not-batchable";
    case BatchFallback::kCohortTooSmall:
      return "cohort-too-small";
  }
  return "?";
}

std::string FormatSlowQuery(const SlowQueryRecord& record) {
  const RequestTrace& t = record.trace;
  char buffer[320];
  int n = std::snprintf(
      buffer, sizeof(buffer),
      "slow query %lld: %s total %.3fms = admission %.3fms + queue %.3fms + "
      "cohort %.3fms + execute %.3fms (worker %d, epoch %llu, delta-depth %lld",
      static_cast<long long>(record.id), record.kind.c_str(),
      t.TotalSeconds() * 1e3, t.AdmissionSeconds() * 1e3,
      t.QueueWaitSeconds() * 1e3, t.CohortFormSeconds() * 1e3,
      t.ExecuteSeconds() * 1e3, record.worker,
      static_cast<unsigned long long>(t.epoch),
      static_cast<long long>(t.delta_depth_at_pin));
  std::string out(buffer, n < 0 ? 0 : static_cast<size_t>(n));
  if (record.batched) {
    n = std::snprintf(buffer, sizeof(buffer),
                      ", cohort %lld of %d over %d partitions, %d rounds",
                      static_cast<long long>(t.cohort_id), t.cohort_size,
                      t.partitions, t.rounds);
    out.append(buffer, n < 0 ? 0 : static_cast<size_t>(n));
  } else if (t.fallback != BatchFallback::kIsolatedMode) {
    n = std::snprintf(buffer, sizeof(buffer), ", fallback %s",
                      BatchFallbackName(t.fallback));
    out.append(buffer, n < 0 ? 0 : static_cast<size_t>(n));
  }
  out += ")";
  return out;
}

SlowQueryLog::SlowQueryLog(double threshold_seconds, size_t capacity)
    : threshold_seconds_(threshold_seconds),
      capacity_(capacity == 0 ? 1 : capacity) {}

bool SlowQueryLog::MaybeRecord(const SlowQueryRecord& record) {
  if (record.trace.TotalSeconds() < threshold_seconds_) {
    return false;
  }
  std::lock_guard<std::mutex> guard(mutex_);
  ++recorded_;
  if (records_.size() < capacity_) {
    records_.push_back(record);
  } else {
    records_[head_] = record;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
  return true;
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<SlowQueryRecord> out;
  out.reserve(records_.size());
  for (size_t i = 0; i < records_.size(); ++i) {
    out.push_back(records_[(head_ + i) % records_.size()]);
  }
  return out;
}

int64_t SlowQueryLog::recorded() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return recorded_;
}

int64_t SlowQueryLog::dropped() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return dropped_;
}

}  // namespace egraph::obs
