// Engine observability: a metrics registry of per-worker-sharded counters
// and log2-bucketed histograms. Hot paths touch only their own worker's
// cache line (one relaxed fetch_add per chunk of work, never per edge);
// aggregation across shards happens on read. The paper's credibility rests
// on end-to-end measurement, so the instrumentation itself must not move
// the numbers it reports.
//
// Compile-time escape hatch: building with -DEGRAPH_METRICS=0 (CMake option
// EGRAPH_METRICS=OFF) compiles every mutation out of the hot path; readers
// then observe zeros. A runtime toggle (SetEnabled) additionally allows
// in-process overhead A/B measurement without rebuilding.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#ifndef EGRAPH_METRICS
#define EGRAPH_METRICS 1
#endif

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/thread_pool.h"

namespace egraph::obs {

inline constexpr bool kMetricsCompiled = EGRAPH_METRICS != 0;

// Runtime toggle over the compiled-in instrumentation (default: enabled).
// A single relaxed bool load on the mutation path; used by the overhead
// test to A/B the cost of the counter writes themselves.
bool Enabled();
void SetEnabled(bool enabled);

namespace internal {
// One cache line per worker so concurrent Add calls never share a line.
struct alignas(64) CounterShard {
  std::atomic<int64_t> value{0};
};

extern std::atomic<bool> g_enabled;
}  // namespace internal

// Monotonic counter, sharded per pool worker. Adds from outside a parallel
// region (or from foreign threads) land on shard 0, which is why shards use
// fetch_add rather than plain stores. Shards are sized for the process-wide
// default pool; workers of larger context-private pools wrap around with a
// modulo, which costs contention on the shared shard but never correctness
// (registries and counters are process-lifetime, context pools are not).
class Counter {
 public:
  explicit Counter(std::string name);

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  const std::string& name() const { return name_; }

  void Add(int64_t delta) {
#if EGRAPH_METRICS
    if (!internal::g_enabled.load(std::memory_order_relaxed)) {
      return;
    }
    shards_[static_cast<size_t>(ThreadPool::CurrentWorkerSlot()) % shards_.size()]
        .value.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  void Increment() { Add(1); }

  // Aggregates across shards. Linearizable only when no Add is concurrent;
  // concurrent reads see a consistent-enough sum for reporting.
  int64_t Total() const;

  void Reset();

 private:
  std::string name_;
  std::vector<internal::CounterShard> shards_;
};

// Log2-bucketed histogram of non-negative integer samples, sharded per
// worker like Counter. Bucket b holds samples in [2^(b-1), 2^b); bucket 0
// holds samples <= 0 and 1. Percentiles are therefore resolved to within a
// factor of two, which is what per-iteration wall-time and frontier-size
// distributions need.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  explicit Histogram(std::string name);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  const std::string& name() const { return name_; }

  void Record(int64_t sample) {
#if EGRAPH_METRICS
    if (!internal::g_enabled.load(std::memory_order_relaxed)) {
      return;
    }
    Shard& shard =
        shards_[static_cast<size_t>(ThreadPool::CurrentWorkerSlot()) % shards_.size()];
    shard.buckets[static_cast<size_t>(BucketOf(sample))].fetch_add(
        1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(sample, std::memory_order_relaxed);
#else
    (void)sample;
#endif
  }

  int64_t Count() const;
  int64_t Sum() const;
  double Mean() const;

  // Upper bound of the bucket containing the q-quantile (q in [0, 1]).
  // Returns 0 for an empty histogram.
  int64_t Percentile(double q) const;

  void Reset();

  // Bucket index for a sample (exposed for tests).
  static int BucketOf(int64_t sample) {
    if (sample <= 1) {
      return 0;
    }
    int bucket = 0;
    uint64_t v = static_cast<uint64_t>(sample - 1);
    while (v != 0) {
      v >>= 1;
      ++bucket;
    }
    return bucket < kBuckets ? bucket : kBuckets - 1;
  }

  // Largest sample value mapping to `bucket` (the value Percentile reports).
  static int64_t BucketUpperBound(int bucket) {
    return bucket == 0 ? 1 : static_cast<int64_t>(1) << bucket;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> buckets[kBuckets]{};
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
  };

  // Aggregated bucket counts across shards.
  std::vector<int64_t> MergedBuckets() const;

  std::string name_;
  std::vector<Shard> shards_;
};

struct CounterSnapshot {
  std::string name;
  int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  int64_t sum = 0;
  double mean = 0.0;
  int64_t p50 = 0;
  int64_t p90 = 0;
  int64_t p95 = 0;
  int64_t p99 = 0;
};

// Process-wide registry. Name lookup takes a mutex, so hot paths should
// resolve their Counter& once (see EngineCounters) rather than per event.
class Registry {
 public:
  static Registry& Get();

  // Returns the counter/histogram registered under `name`, creating it on
  // first use. References remain valid for the process lifetime.
  Counter& GetCounter(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Zeroes every counter and histogram (names stay registered).
  void ResetAll();

  std::vector<CounterSnapshot> SnapshotCounters() const;
  std::vector<HistogramSnapshot> SnapshotHistograms() const;

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  // std::map keeps snapshots name-sorted; unique_ptr keeps addresses stable.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// The engine's hot-path counters, resolved once. Everything EdgeMap, the
// scans and Frontier touch per chunk/conversion lives here.
struct EngineCounters {
  Counter& edgemap_calls;        // one per EdgeMap / whole-graph scan
  Counter& edges_scanned;        // edge entries examined
  Counter& edges_relaxed;        // Update calls returning true
  Counter& frontier_to_dense;    // sparse -> bitmap materializations
  Counter& frontier_to_sparse;   // bitmap -> vector materializations
  Histogram& frontier_size;      // |frontier| entering each EdgeMap

  static EngineCounters& Get();
};

}  // namespace egraph::obs

#endif  // SRC_OBS_METRICS_H_
