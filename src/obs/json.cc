#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace egraph::obs {
namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; emit null like most encoders.
    out += "null";
    return;
  }
  // Integral values (the common case: counts) print without a fraction.
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
    out += buffer;
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("trailing characters after document");
    }
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    throw std::runtime_error("json parse error at offset " + std::to_string(pos_) +
                             ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  char Peek() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool Consume(const char* literal) {
    const size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return JsonValue(ParseString());
      case 't':
        if (!Consume("true")) {
          Fail("bad literal");
        }
        return JsonValue(true);
      case 'f':
        if (!Consume("false")) {
          Fail("bad literal");
        }
        return JsonValue(false);
      case 'n':
        if (!Consume("null")) {
          Fail("bad literal");
        }
        return JsonValue();
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue object = JsonValue::Object();
    if (Peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      if (Peek() != '"') {
        Fail("expected object key");
      }
      std::string key = ParseString();
      Expect(':');
      object.Set(key, ParseValue());
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return object;
      }
      Fail("expected ',' or '}'");
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue array = JsonValue::Array();
    if (Peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.Append(ParseValue());
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return array;
      }
      Fail("expected ',' or ']'");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("unterminated escape");
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad \\u escape");
            }
          }
          // Encode as UTF-8 (basic multilingual plane only; surrogate pairs
          // are outside the exporters' output alphabet).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          Fail("unknown escape");
      }
    }
  }

  JsonValue ParseNumber() {
    SkipWhitespace();
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected a value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      Fail("bad number: " + token);
    }
    return JsonValue(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

void JsonValue::Set(const std::string& key, JsonValue value) {
  for (auto& [existing_key, existing_value] : members_) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [member_key, member_value] : members_) {
    if (member_key == key) {
      return &member_value;
    }
  }
  return nullptr;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) {
    return false;
  }
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return items_ == other.items_;
    case Type::kObject:
      return members_ == other.members_;
  }
  return false;
}

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
                                 : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<size_t>(indent * depth), ' ') : std::string();
  const char* newline = pretty ? "\n" : "";
  const char* colon = pretty ? ": " : ":";

  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += "[";
      out += newline;
      for (size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].DumpTo(out, indent, depth + 1);
        if (i + 1 < items_.size()) {
          out += ",";
        }
        out += newline;
      }
      out += close_pad;
      out += "]";
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{";
      out += newline;
      for (size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        AppendEscaped(out, members_[i].first);
        out += colon;
        members_[i].second.DumpTo(out, indent, depth + 1);
        if (i + 1 < members_.size()) {
          out += ",";
        }
        out += newline;
      }
      out += close_pad;
      out += "}";
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

JsonValue JsonValue::Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace egraph::obs
