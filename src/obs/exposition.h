// Live stats exposition: serializes the whole obs::Registry (counters +
// histograms) plus caller-supplied point-in-time gauges to the Prometheus
// text exposition format and to JSON, and runs a StatsSampler background
// thread that rewrites both files on a fixed interval — the scrape surface
// for `egraph_cli serve --stats-out`. Counters and histograms come straight
// from the registry snapshots; gauges are sampled through a callback at
// exposition time, so a serving layer can expose queue depth, in-flight
// queries, epoch-chain length etc. without the obs library knowing about
// QuerySession or SnapshotStore (which sit above it in the link order).
//
// Format notes (validated by tools/metrics_lint.py against the golden file
// in tests/data/):
//   * metric names are sanitized to [a-zA-Z_:][a-zA-Z0-9_:]* and prefixed
//     "egraph_" ("serve.bfs.total_us" -> "egraph_serve_bfs_total_us");
//   * registry counters emit as TYPE counter, gauges as TYPE gauge;
//   * histograms emit as TYPE summary: quantile-labeled samples for
//     p50/p95/p99 (log2-bucket upper bounds, the 2x resolution documented
//     in metrics.h) plus the exact _sum and _count.
#ifndef SRC_OBS_EXPOSITION_H_
#define SRC_OBS_EXPOSITION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json.h"

namespace egraph::obs {

// A point-in-time measurement sampled at exposition time (queue depth,
// in-flight queries, retained bytes, ...). Dotted names; sanitized for
// Prometheus on output like every registry name.
struct GaugeSample {
  std::string name;
  double value = 0.0;
};

// Polled by the exposition writers each time they serialize.
using GaugeProvider = std::function<std::vector<GaugeSample>()>;

// The obs layer's own health gauges: engine-trace ring accounting for the
// thread's current TraceSink (obs.trace_sink.recorded / .dropped) and total
// timeline events dropped to full buffers (obs.timeline.dropped_events) —
// the drop counts that used to vanish silently when rings overflowed under
// high concurrency.
std::vector<GaugeSample> ObsSelfGauges();

// "serve.bfs.total_us" -> "egraph_serve_bfs_total_us": every character
// outside [a-zA-Z0-9_:] becomes '_', and the "egraph_" prefix namespaces
// the process in a shared scrape.
std::string PrometheusMetricName(const std::string& name);

// The full registry plus `gauges` in Prometheus text exposition format
// (ends with a newline, as the format requires).
std::string ExpositionText(const std::vector<GaugeSample>& gauges = {});

// Same content as JSON: {"schema": "egraph-stats-v1", "counters": {...},
// "histograms": {name: {count,sum,mean,p50,p95,p99}}, "gauges": {...}}.
JsonValue ExpositionJson(const std::vector<GaugeSample>& gauges = {});

// Writes ExpositionText to `text_path` and ExpositionJson to `json_path`
// (skipping either when empty). Returns false (and prints to stderr) when a
// file cannot be written.
bool WriteExposition(const std::string& text_path, const std::string& json_path,
                     const std::vector<GaugeSample>& gauges = {});

// Background gauge/registry snapshotter: every interval it polls the gauge
// provider, appends ObsSelfGauges(), and rewrites the exposition files —
// the live side of `serve --stats-out=PATH --stats-interval-ms=N` (PATH
// gets the Prometheus text, PATH.json the JSON document). Stop() (or the
// destructor) takes a final sample so the files always end at the
// post-drain state.
class StatsSampler {
 public:
  struct Options {
    std::string path;        // Prometheus text file; + ".json" for the JSON
    int interval_ms = 1000;  // clamped to >= 1
    GaugeProvider gauges;    // optional; polled per sample
  };

  explicit StatsSampler(Options options);
  ~StatsSampler();

  StatsSampler(const StatsSampler&) = delete;
  StatsSampler& operator=(const StatsSampler&) = delete;

  // Takes one sample synchronously on the caller. Thread-safe.
  bool SampleNow();

  // Stops the background thread after a final sample. Idempotent.
  void Stop();

  // Samples written so far (periodic + SampleNow + the final one).
  int64_t samples() const { return samples_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  const Options options_;
  std::atomic<int64_t> samples_{0};
  std::mutex mutex_;  // guards stop_ and serializes file writes
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace egraph::obs

#endif  // SRC_OBS_EXPOSITION_H_
