// Exporters: turn the metrics registry, phase timers and collected engine
// traces into JSON documents and human-readable tables. The JSON schema is
// documented in docs/observability.md and covered by obs_test's round-trip
// tests.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <string>

#include "src/obs/json.h"
#include "src/obs/trace.h"

namespace egraph::obs {

// {"load": s, "preprocess": s, "partition": s, "algorithm": s, "total": s}
JsonValue PhasesToJson();

// {"counters": {name: value, ...}, "histograms": {name: {...}, ...}}
JsonValue MetricsToJson();

// {"algorithm", "layout", "direction", "sync", "total_seconds",
//  "iterations": [{...}, ...]}
JsonValue TraceToJson(const EngineTrace& trace);

// The full process report: name + threads + phases + metrics + every trace
// currently in the TraceSink.
JsonValue ProcessReportToJson(const std::string& name);

// Renders counters, histograms and the phase breakdown as aligned tables
// (the CLI's --metrics output).
std::string MetricsTableString();

// Writes ProcessReportToJson(name) to `path` (pretty-printed). Returns
// false (and prints to stderr) when the file cannot be written.
bool WriteProcessReport(const std::string& path, const std::string& name);

}  // namespace egraph::obs

#endif  // SRC_OBS_EXPORT_H_
