// Per-iteration engine tracing: what the engine actually did each round —
// frontier size and representation, edges scanned and relaxed, the
// direction the push-pull heuristic chose, and wall time. One EngineTrace
// per algorithm run; a TraceSession drives it from the run loop by
// snapshotting the engine counters around each iteration.
//
// Completed traces are also deposited in the process-wide TraceSink so that
// harness code (bench binaries, the CLI) can export every run's trace
// without threading objects through each call site.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/engine/options.h"
#include "src/obs/metrics.h"
#include "src/util/timer.h"

namespace egraph::obs {

struct IterationRecord {
  int iteration = 0;              // 0-based round index
  int64_t frontier_size = 0;      // active vertices entering the round
  bool frontier_sparse = false;   // representation entering the round
  int64_t edges_scanned = 0;      // edge entries examined this round
  int64_t edges_relaxed = 0;      // successful updates this round
  Direction direction = Direction::kPush;  // direction actually executed
  double seconds = 0.0;           // wall time of the round
};

struct EngineTrace {
  std::string algorithm;
  Layout layout = Layout::kAdjacency;
  Direction direction = Direction::kPush;  // configured (kPushPull = hybrid)
  Sync sync = Sync::kAtomics;
  double total_seconds = 0.0;
  std::vector<IterationRecord> iterations;
};

// Drives an EngineTrace from an algorithm's iteration loop:
//
//   obs::TraceSession session(stats.trace, "bfs", layout, direction, sync);
//   while (!frontier.Empty()) {
//     session.BeginIteration(frontier.Count(), frontier.has_sparse());
//     ... EdgeMap ...
//     session.EndIteration(direction_actually_used);
//   }
//
// Edge counts come from counter deltas, so they include everything the
// EdgeMap/scan instrumentation records during the iteration (and read as
// zero under EGRAPH_METRICS=0). The destructor stamps total_seconds and
// deposits a copy of the trace in the TraceSink.
class TraceSession {
 public:
  TraceSession(EngineTrace& trace, const char* algorithm, Layout layout,
               Direction direction, Sync sync);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  void BeginIteration(int64_t frontier_count, bool frontier_sparse);
  void EndIteration(Direction direction_used);

 private:
  EngineTrace& trace_;
  Timer total_timer_;
  Timer iteration_timer_;
  IterationRecord pending_;
  int64_t scanned_at_begin_ = 0;
  int64_t relaxed_at_begin_ = 0;
  uint64_t iteration_start_ns_ = 0;  // timeline span anchor (0 = tracing off)
  bool in_iteration_ = false;
};

// Bounded process-wide collection of completed traces (newest kept; the
// oldest are dropped past the cap so long-lived processes stay small).
class TraceSink {
 public:
  static constexpr int kMaxTraces = 256;

  static TraceSink& Get();

  void Record(const EngineTrace& trace);
  std::vector<EngineTrace> Snapshot() const;
  void Clear();

  // Traces recorded since process start (including dropped ones).
  int64_t recorded() const;

 private:
  TraceSink() = default;

  mutable std::mutex mutex_;
  std::vector<EngineTrace> traces_;
  int64_t recorded_ = 0;
};

}  // namespace egraph::obs

#endif  // SRC_OBS_TRACE_H_
