// Per-iteration engine tracing: what the engine actually did each round —
// frontier size and representation, edges scanned and relaxed, the
// direction the push-pull heuristic chose, and wall time. One EngineTrace
// per algorithm run; a TraceSession drives it from the run loop by
// snapshotting the engine counters around each iteration.
//
// Completed traces are also deposited in a TraceSink so that harness code
// (bench binaries, the CLI) can export every run's trace without threading
// objects through each call site. Which sink receives them is a thread-local
// decision: the process-wide TraceSink::Get() by default, or the sink bound
// by the innermost ScopedTraceSink — which is how each ExecutionContext
// keeps its queries' traces separate from every other context's.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/engine/options.h"
#include "src/obs/metrics.h"
#include "src/util/timer.h"

namespace egraph::obs {

struct IterationRecord {
  int iteration = 0;              // 0-based round index
  int64_t frontier_size = 0;      // active vertices entering the round
  bool frontier_sparse = false;   // representation entering the round
  int64_t edges_scanned = 0;      // edge entries examined this round
  int64_t edges_relaxed = 0;      // successful updates this round
  Direction direction = Direction::kPush;  // direction actually executed
  double seconds = 0.0;           // wall time of the round
};

struct EngineTrace {
  std::string algorithm;
  Layout layout = Layout::kAdjacency;
  Direction direction = Direction::kPush;  // configured (kPushPull = hybrid)
  Sync sync = Sync::kAtomics;
  double total_seconds = 0.0;
  std::vector<IterationRecord> iterations;
};

// Drives an EngineTrace from an algorithm's iteration loop:
//
//   obs::TraceSession session(stats.trace, "bfs", layout, direction, sync);
//   while (!frontier.Empty()) {
//     session.BeginIteration(frontier.Count(), frontier.has_sparse());
//     ... EdgeMap ...
//     session.EndIteration(direction_actually_used);
//   }
//
// Edge counts come from counter deltas, so they include everything the
// EdgeMap/scan instrumentation records during the iteration (and read as
// zero under EGRAPH_METRICS=0). The destructor stamps total_seconds and
// deposits a copy of the trace in the TraceSink.
class TraceSession {
 public:
  TraceSession(EngineTrace& trace, const char* algorithm, Layout layout,
               Direction direction, Sync sync);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  void BeginIteration(int64_t frontier_count, bool frontier_sparse);
  void EndIteration(Direction direction_used);

 private:
  EngineTrace& trace_;
  Timer total_timer_;
  Timer iteration_timer_;
  IterationRecord pending_;
  int64_t scanned_at_begin_ = 0;
  int64_t relaxed_at_begin_ = 0;
  uint64_t iteration_start_ns_ = 0;  // timeline span anchor (0 = tracing off)
  bool in_iteration_ = false;
};

// Bounded collection of completed traces: a ring buffer holding the newest
// `capacity` traces, with drop accounting for the overwritten ones
// (mirroring the timeline buffers' bounded-with-drop-count contract, except
// the ring keeps the newest rather than the oldest — the trace a user asks
// about is almost always the most recent run). Instantiable so an
// ExecutionContext can own a private sink; Get() is the process-wide
// default that existing benches and the CLI keep using unchanged.
class TraceSink {
 public:
  static constexpr int kMaxTraces = 256;

  explicit TraceSink(size_t capacity = kMaxTraces);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Process-wide default sink (the default context's sink).
  static TraceSink& Get();

  // The sink TraceSession deposits into on this thread: the innermost
  // ScopedTraceSink binding, falling back to Get().
  static TraceSink& Current();

  void Record(const EngineTrace& trace);

  // Retained traces, oldest to newest.
  std::vector<EngineTrace> Snapshot() const;

  // Drops retained traces; recorded()/dropped() keep counting.
  void Clear();

  // Clears retained traces AND zeroes the recorded/dropped accounting —
  // what benches call between measured sections so long repetitions do not
  // accumulate state.
  void Reset();

  size_t capacity() const { return capacity_; }

  // Traces recorded since construction (or the last Reset), including ones
  // since overwritten.
  int64_t recorded() const;

  // Traces overwritten by newer ones since construction (or the last Reset).
  int64_t dropped() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<EngineTrace> traces_;  // ring storage, at most capacity_ entries
  size_t head_ = 0;                  // index of the oldest retained trace
  int64_t recorded_ = 0;
  int64_t dropped_ = 0;
};

// RAII thread-local binding of TraceSink::Current(). Bindings nest; each
// thread sees only its own binding (an ExecutionContext binds its sink on
// the thread running the query, leaving other queries' threads alone).
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceSink& sink);
  ~ScopedTraceSink();

  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

 private:
  TraceSink* previous_;
};

}  // namespace egraph::obs

#endif  // SRC_OBS_TRACE_H_
