#include "src/obs/timeline.h"

#include <algorithm>
#include <cstdio>
#include <string_view>

#include "src/obs/json.h"
#include "src/util/env.h"
#include "src/util/table.h"

namespace egraph::obs {
namespace {

// A worker's display label when it never named itself ("worker 3", "main").
std::string TrackLabel(const Timeline::ThreadSnapshot& snapshot) {
  if (!snapshot.label.empty()) {
    return snapshot.label;
  }
  if (snapshot.worker_id == 0) {
    return "main (worker 0)";
  }
  if (snapshot.worker_id > 0) {
    return "worker " + std::to_string(snapshot.worker_id);
  }
  return "thread " + std::to_string(snapshot.tid);
}

bool IsPoolSpan(const TimelineEvent& event) {
  return event.kind == TimelineEventKind::kSpan &&
         std::string_view(event.cat) == "pool";
}

}  // namespace

bool TimelineEnableFromEnv() {
  if (EnvInt64("EG_TIMELINE", 0) != 0) {
    const int64_t capacity = EnvInt64("EG_TIMELINE_EVENTS", 0);
    if (capacity > 0) {
      Timeline::SetCapacityPerThread(static_cast<size_t>(capacity));
    }
    Timeline::SetEnabled(true);
  }
  return Timeline::Enabled();
}

TimelineSummary SummarizeTimeline() {
  TimelineSummary summary;
  uint64_t min_start = UINT64_MAX;
  uint64_t max_end = 0;

  for (const Timeline::ThreadSnapshot& snapshot : Timeline::Snapshot()) {
    TimelineWorkerSummary worker;
    worker.tid = snapshot.tid;
    worker.worker_id = snapshot.worker_id;
    worker.label = TrackLabel(snapshot);
    worker.events = snapshot.events.size();
    worker.dropped = snapshot.dropped;
    summary.dropped_events += snapshot.dropped;
    for (const TimelineEvent& event : snapshot.events) {
      min_start = std::min(min_start, event.start_ns);
      max_end = std::max(max_end, event.start_ns + event.dur_ns);
      if (!IsPoolSpan(event)) {
        continue;
      }
      const std::string_view name(event.name);
      const double seconds = static_cast<double>(event.dur_ns) * 1e-9;
      if (name == "run" || name == "steal") {
        ++worker.chunks;
        worker.busy_seconds += seconds;
        if (name == "steal") {
          ++worker.steals;
          worker.steal_seconds += seconds;
        }
      } else if (name == "idle") {
        worker.idle_seconds += seconds;
      }
    }
    if (worker.events != 0 || worker.dropped != 0) {
      summary.workers.push_back(std::move(worker));
    }
  }

  if (min_start != UINT64_MAX) {
    summary.wall_seconds = static_cast<double>(max_end - min_start) * 1e-9;
  }
  double busy_sum = 0.0;
  int pool_workers = 0;
  for (const TimelineWorkerSummary& worker : summary.workers) {
    if (worker.worker_id < 0 || worker.chunks == 0) {
      continue;  // foreign threads don't dilute pool utilization
    }
    ++pool_workers;
    busy_sum += worker.busy_seconds;
    summary.critical_path_seconds =
        std::max(summary.critical_path_seconds, worker.busy_seconds);
  }
  if (pool_workers > 0 && summary.wall_seconds > 0.0) {
    summary.utilization = busy_sum / (summary.wall_seconds * pool_workers);
  }
  if (pool_workers > 0 && busy_sum > 0.0) {
    summary.imbalance =
        summary.critical_path_seconds / (busy_sum / pool_workers);
  }
  return summary;
}

JsonValue TimelineSummaryToJson(const TimelineSummary& summary) {
  JsonValue out = JsonValue::Object();
  out.Set("wall_seconds", summary.wall_seconds);
  out.Set("critical_path_seconds", summary.critical_path_seconds);
  out.Set("utilization", summary.utilization);
  out.Set("imbalance", summary.imbalance);
  out.Set("dropped_events", static_cast<int64_t>(summary.dropped_events));
  JsonValue workers = JsonValue::Array();
  for (const TimelineWorkerSummary& worker : summary.workers) {
    JsonValue entry = JsonValue::Object();
    entry.Set("tid", worker.tid);
    entry.Set("worker", worker.worker_id);
    entry.Set("label", worker.label);
    entry.Set("events", static_cast<int64_t>(worker.events));
    entry.Set("dropped", static_cast<int64_t>(worker.dropped));
    entry.Set("chunks", worker.chunks);
    entry.Set("steals", worker.steals);
    entry.Set("busy_seconds", worker.busy_seconds);
    entry.Set("steal_seconds", worker.steal_seconds);
    entry.Set("idle_seconds", worker.idle_seconds);
    workers.Append(std::move(entry));
  }
  out.Set("workers", std::move(workers));
  return out;
}

JsonValue TimelineToChromeJson() {
  const std::vector<Timeline::ThreadSnapshot> snapshots = Timeline::Snapshot();

  // Rebase timestamps so the trace starts near zero (Chrome renders ts in
  // microseconds; raw steady-clock nanoseconds overflow its UI precision).
  uint64_t base_ns = UINT64_MAX;
  for (const auto& snapshot : snapshots) {
    for (const TimelineEvent& event : snapshot.events) {
      base_ns = std::min(base_ns, event.start_ns);
    }
  }
  if (base_ns == UINT64_MAX) {
    base_ns = 0;
  }

  JsonValue events = JsonValue::Array();
  for (const auto& snapshot : snapshots) {
    if (snapshot.events.empty()) {
      continue;
    }
    JsonValue meta = JsonValue::Object();
    meta.Set("ph", "M");
    meta.Set("name", "thread_name");
    meta.Set("pid", 0);
    meta.Set("tid", snapshot.tid);
    JsonValue meta_args = JsonValue::Object();
    meta_args.Set("name", TrackLabel(snapshot));
    meta.Set("args", std::move(meta_args));
    events.Append(std::move(meta));

    for (const TimelineEvent& event : snapshot.events) {
      JsonValue entry = JsonValue::Object();
      entry.Set("ph", event.kind == TimelineEventKind::kSpan ? "X" : "i");
      entry.Set("name", event.name);
      entry.Set("cat", event.cat);
      entry.Set("pid", 0);
      entry.Set("tid", snapshot.tid);
      entry.Set("ts", static_cast<double>(event.start_ns - base_ns) / 1e3);
      if (event.kind == TimelineEventKind::kSpan) {
        entry.Set("dur", static_cast<double>(event.dur_ns) / 1e3);
      } else {
        entry.Set("s", "t");  // instant scope: thread
      }
      JsonValue args = JsonValue::Object();
      args.Set("arg", event.arg);
      entry.Set("args", std::move(args));
      events.Append(std::move(entry));
    }
  }

  JsonValue out = JsonValue::Object();
  out.Set("traceEvents", std::move(events));
  out.Set("displayTimeUnit", "ms");
  out.Set("egraphSummary", TimelineSummaryToJson(SummarizeTimeline()));
  return out;
}

bool WriteTimelineTrace(const std::string& path) {
  const std::string json = TimelineToChromeJson().Dump(/*indent=*/1);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "obs: cannot write timeline to %s\n", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  return written == json.size();
}

std::string TimelineSummaryTableString() {
  const TimelineSummary summary = SummarizeTimeline();
  std::string out = "timeline summary\n";
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "wall %.3fs  critical-path %.3fs  utilization %.1f%%  imbalance %.2f\n",
                summary.wall_seconds, summary.critical_path_seconds,
                summary.utilization * 100.0, summary.imbalance);
  out += buffer;
  if (summary.dropped_events != 0) {
    std::snprintf(buffer, sizeof(buffer),
                  "WARNING: %llu events dropped to full buffers; totals below "
                  "undercount (raise EG_TIMELINE_EVENTS)\n",
                  static_cast<unsigned long long>(summary.dropped_events));
    out += buffer;
  }
  Table table({"track", "chunks", "steals", "busy(s)", "steal(s)", "idle(s)",
               "events", "dropped"});
  for (const TimelineWorkerSummary& worker : summary.workers) {
    table.AddRow({worker.label, Table::FormatCount(worker.chunks),
                  Table::FormatCount(worker.steals), Table::FormatSeconds(worker.busy_seconds),
                  Table::FormatSeconds(worker.steal_seconds),
                  Table::FormatSeconds(worker.idle_seconds),
                  Table::FormatCount(static_cast<int64_t>(worker.events)),
                  Table::FormatCount(static_cast<int64_t>(worker.dropped))});
  }
  out += table.ToString();
  return out;
}

}  // namespace egraph::obs
