// Minimal JSON document model with a writer and a strict recursive-descent
// parser. Exists so trace export needs no third-party dependency and so the
// test suite can round-trip every exported document through a real parser.
// Scope: the JSON subset the exporters emit — objects (insertion-ordered),
// arrays, strings (with standard escapes), finite doubles, bools, null.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace egraph::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}           // NOLINT
  JsonValue(double value) : type_(Type::kNumber), number_(value) {}     // NOLINT
  JsonValue(int value) : JsonValue(static_cast<double>(value)) {}       // NOLINT
  JsonValue(int64_t value) : JsonValue(static_cast<double>(value)) {}   // NOLINT
  JsonValue(const char* value) : type_(Type::kString), string_(value) {}  // NOLINT
  JsonValue(std::string value) : type_(Type::kString), string_(std::move(value)) {}  // NOLINT

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  // Typed accessors; only valid for the matching type.
  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Array append.
  void Append(JsonValue value) { items_.push_back(std::move(value)); }

  // Object insert (keeps insertion order; duplicate keys overwrite).
  void Set(const std::string& key, JsonValue value);

  // Object lookup; nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;

  // Structural equality; numbers compare exactly.
  bool operator==(const JsonValue& other) const;

  // Serializes the document. indent < 0 emits compact single-line JSON;
  // otherwise nested levels are indented by `indent` spaces.
  std::string Dump(int indent = -1) const;

  // Parses `text` (a complete document; trailing garbage is an error).
  // Throws std::runtime_error with position information on malformed input.
  static JsonValue Parse(const std::string& text);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace egraph::obs

#endif  // SRC_OBS_JSON_H_
