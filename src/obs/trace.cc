#include "src/obs/trace.h"

#include "src/obs/timeline.h"

namespace egraph::obs {

TraceSession::TraceSession(EngineTrace& trace, const char* algorithm, Layout layout,
                           Direction direction, Sync sync)
    : trace_(trace) {
  trace_.algorithm = algorithm;
  trace_.layout = layout;
  trace_.direction = direction;
  trace_.sync = sync;
  trace_.total_seconds = 0.0;
  trace_.iterations.clear();
}

TraceSession::~TraceSession() {
  if (in_iteration_) {
    // An algorithm bailed mid-iteration; close the record so the trace is
    // still well-formed.
    EndIteration(trace_.direction);
  }
  trace_.total_seconds = total_timer_.Seconds();
  TraceSink::Current().Record(trace_);
}

void TraceSession::BeginIteration(int64_t frontier_count, bool frontier_sparse) {
  EngineCounters& counters = EngineCounters::Get();
  pending_ = IterationRecord{};
  pending_.iteration = static_cast<int>(trace_.iterations.size());
  pending_.frontier_size = frontier_count;
  pending_.frontier_sparse = frontier_sparse;
  scanned_at_begin_ = counters.edges_scanned.Total();
  relaxed_at_begin_ = counters.edges_relaxed.Total();
  counters.frontier_size.Record(frontier_count);
  in_iteration_ = true;
  iteration_start_ns_ = TimelineNow();
  iteration_timer_.Reset();
}

void TraceSession::EndIteration(Direction direction_used) {
  EngineCounters& counters = EngineCounters::Get();
  pending_.seconds = iteration_timer_.Seconds();
  pending_.edges_scanned = counters.edges_scanned.Total() - scanned_at_begin_;
  pending_.edges_relaxed = counters.edges_relaxed.Total() - relaxed_at_begin_;
  pending_.direction = direction_used;
  TimelineEndSpan("engine", "iteration", iteration_start_ns_, pending_.iteration);
  trace_.iterations.push_back(pending_);
  in_iteration_ = false;
}

namespace {

thread_local TraceSink* tls_current_sink = nullptr;

}  // namespace

TraceSink::TraceSink(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

TraceSink& TraceSink::Get() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

TraceSink& TraceSink::Current() {
  return tls_current_sink != nullptr ? *tls_current_sink : Get();
}

ScopedTraceSink::ScopedTraceSink(TraceSink& sink) : previous_(tls_current_sink) {
  tls_current_sink = &sink;
}

ScopedTraceSink::~ScopedTraceSink() { tls_current_sink = previous_; }

void TraceSink::Record(const EngineTrace& trace) {
  std::lock_guard<std::mutex> guard(mutex_);
  ++recorded_;
  if (traces_.size() < capacity_) {
    traces_.push_back(trace);
    return;
  }
  // Ring is full: overwrite the oldest slot in place (no O(capacity) shift,
  // no allocation churn across long-lived serving processes).
  traces_[head_] = trace;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<EngineTrace> TraceSink::Snapshot() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<EngineTrace> out;
  out.reserve(traces_.size());
  for (size_t i = 0; i < traces_.size(); ++i) {
    out.push_back(traces_[(head_ + i) % traces_.size()]);
  }
  return out;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> guard(mutex_);
  traces_.clear();
  head_ = 0;
}

void TraceSink::Reset() {
  std::lock_guard<std::mutex> guard(mutex_);
  traces_.clear();
  head_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

int64_t TraceSink::recorded() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return recorded_;
}

int64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return dropped_;
}

}  // namespace egraph::obs
