#include "src/obs/exposition.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/timeline.h"
#include "src/obs/trace.h"

namespace egraph::obs {
namespace {

// Prometheus sample values are floats; integral values print without a
// fraction so counters stay exact and diffable.
std::string FormatValue(double value) {
  char buffer[64];
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  }
  return buffer;
}

void AppendFamilyHeader(std::string& out, const std::string& metric,
                        const char* type) {
  out += "# TYPE ";
  out += metric;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::vector<GaugeSample> ObsSelfGauges() {
  std::vector<GaugeSample> gauges;
  TraceSink& sink = TraceSink::Current();
  gauges.push_back({"obs.trace_sink.recorded",
                    static_cast<double>(sink.recorded())});
  gauges.push_back({"obs.trace_sink.dropped",
                    static_cast<double>(sink.dropped())});
  gauges.push_back({"obs.timeline.dropped_events",
                    static_cast<double>(Timeline::TotalDropped())});
  return gauges;
}

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "egraph_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  return out;
}

std::string ExpositionText(const std::vector<GaugeSample>& gauges) {
  std::string out;

  for (const CounterSnapshot& c : Registry::Get().SnapshotCounters()) {
    const std::string metric = PrometheusMetricName(c.name);
    AppendFamilyHeader(out, metric, "counter");
    out += metric;
    out += ' ';
    out += FormatValue(static_cast<double>(c.value));
    out += '\n';
  }

  // Histograms expose as summaries: the registry's log2 buckets resolve a
  // quantile to its bucket's upper bound (within 2x), which is the same
  // contract Percentile() documents in-process.
  for (const HistogramSnapshot& h : Registry::Get().SnapshotHistograms()) {
    const std::string metric = PrometheusMetricName(h.name);
    AppendFamilyHeader(out, metric, "summary");
    const std::pair<const char*, int64_t> quantiles[] = {
        {"0.5", h.p50}, {"0.95", h.p95}, {"0.99", h.p99}};
    for (const auto& [q, value] : quantiles) {
      out += metric;
      out += "{quantile=\"";
      out += q;
      out += "\"} ";
      out += FormatValue(static_cast<double>(value));
      out += '\n';
    }
    out += metric;
    out += "_sum ";
    out += FormatValue(static_cast<double>(h.sum));
    out += '\n';
    out += metric;
    out += "_count ";
    out += FormatValue(static_cast<double>(h.count));
    out += '\n';
  }

  for (const GaugeSample& gauge : gauges) {
    const std::string metric = PrometheusMetricName(gauge.name);
    AppendFamilyHeader(out, metric, "gauge");
    out += metric;
    out += ' ';
    out += FormatValue(gauge.value);
    out += '\n';
  }
  return out;
}

JsonValue ExpositionJson(const std::vector<GaugeSample>& gauges) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", "egraph-stats-v1");
  doc.Set("metrics_compiled", kMetricsCompiled);

  JsonValue counters = JsonValue::Object();
  for (const CounterSnapshot& c : Registry::Get().SnapshotCounters()) {
    counters.Set(c.name, c.value);
  }
  doc.Set("counters", std::move(counters));

  JsonValue histograms = JsonValue::Object();
  for (const HistogramSnapshot& h : Registry::Get().SnapshotHistograms()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("count", h.count);
    entry.Set("sum", h.sum);
    entry.Set("mean", h.mean);
    entry.Set("p50", h.p50);
    entry.Set("p95", h.p95);
    entry.Set("p99", h.p99);
    histograms.Set(h.name, std::move(entry));
  }
  doc.Set("histograms", std::move(histograms));

  JsonValue gauge_obj = JsonValue::Object();
  for (const GaugeSample& gauge : gauges) {
    gauge_obj.Set(gauge.name, gauge.value);
  }
  doc.Set("gauges", std::move(gauge_obj));
  return doc;
}

namespace {

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "obs: cannot write stats to %s\n", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  return written == content.size();
}

}  // namespace

bool WriteExposition(const std::string& text_path, const std::string& json_path,
                     const std::vector<GaugeSample>& gauges) {
  bool ok = true;
  if (!text_path.empty()) {
    ok &= WriteFile(text_path, ExpositionText(gauges));
  }
  if (!json_path.empty()) {
    ok &= WriteFile(json_path, ExpositionJson(gauges).Dump(2) + "\n");
  }
  return ok;
}

StatsSampler::StatsSampler(Options options) : options_(std::move(options)) {
  thread_ = std::thread([this] { Loop(); });
}

StatsSampler::~StatsSampler() { Stop(); }

bool StatsSampler::SampleNow() {
  std::vector<GaugeSample> gauges;
  if (options_.gauges) {
    gauges = options_.gauges();
  }
  const std::vector<GaugeSample> self = ObsSelfGauges();
  gauges.insert(gauges.end(), self.begin(), self.end());
  bool ok = false;
  {
    // Serialize with the background thread so the files never interleave
    // two writers.
    std::lock_guard<std::mutex> guard(mutex_);
    ok = WriteExposition(options_.path, options_.path + ".json", gauges);
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

void StatsSampler::Stop() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (stop_) {
      if (thread_.joinable()) {
        thread_.join();
      }
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  SampleNow();  // the files end at the final (post-drain) state
}

void StatsSampler::Loop() {
  const auto interval =
      std::chrono::milliseconds(options_.interval_ms < 1 ? 1 : options_.interval_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (cv_.wait_for(lock, interval, [this] { return stop_; })) {
        return;  // final write happens in Stop(), after the join
      }
    }
    SampleNow();
  }
}

}  // namespace egraph::obs
