#include "src/obs/export.h"

#include <cstdio>

#include "src/obs/phase.h"
#include "src/obs/timeline.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

namespace egraph::obs {
namespace {

// Local enum names: obs sits below the engine library in the link order, so
// it spells out the handful of names itself instead of pulling in
// engine/options.cc.
const char* LayoutString(Layout layout) {
  switch (layout) {
    case Layout::kEdgeArray:
      return "edge-array";
    case Layout::kAdjacency:
      return "adjacency";
    case Layout::kGrid:
      return "grid";
    case Layout::kCompressed:
      return "compressed";
    case Layout::kSharded:
      return "sharded";
  }
  return "?";
}

const char* DirectionString(Direction direction) {
  switch (direction) {
    case Direction::kPush:
      return "push";
    case Direction::kPull:
      return "pull";
    case Direction::kPushPull:
      return "push-pull";
  }
  return "?";
}

const char* SyncString(Sync sync) {
  switch (sync) {
    case Sync::kAtomics:
      return "atomics";
    case Sync::kLocks:
      return "locks";
    case Sync::kLockFree:
      return "lock-free";
  }
  return "?";
}

}  // namespace

JsonValue PhasesToJson() {
  const TimingBreakdown breakdown = PhaseTimers::Get().ToBreakdown();
  JsonValue phases = JsonValue::Object();
  phases.Set("load", breakdown.load_seconds);
  phases.Set("preprocess", breakdown.preprocess_seconds);
  phases.Set("partition", breakdown.partition_seconds);
  phases.Set("algorithm", breakdown.algorithm_seconds);
  phases.Set("total", breakdown.Total());
  return phases;
}

JsonValue MetricsToJson() {
  JsonValue metrics = JsonValue::Object();

  JsonValue counters = JsonValue::Object();
  for (const CounterSnapshot& c : Registry::Get().SnapshotCounters()) {
    counters.Set(c.name, c.value);
  }
  metrics.Set("counters", std::move(counters));

  JsonValue histograms = JsonValue::Object();
  for (const HistogramSnapshot& h : Registry::Get().SnapshotHistograms()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("count", h.count);
    entry.Set("sum", h.sum);
    entry.Set("mean", h.mean);
    entry.Set("p50", h.p50);
    entry.Set("p90", h.p90);
    entry.Set("p95", h.p95);
    entry.Set("p99", h.p99);
    histograms.Set(h.name, std::move(entry));
  }
  metrics.Set("histograms", std::move(histograms));
  return metrics;
}

JsonValue TraceToJson(const EngineTrace& trace) {
  JsonValue out = JsonValue::Object();
  out.Set("algorithm", trace.algorithm);
  out.Set("layout", LayoutString(trace.layout));
  out.Set("direction", DirectionString(trace.direction));
  out.Set("sync", SyncString(trace.sync));
  out.Set("total_seconds", trace.total_seconds);
  out.Set("num_iterations", static_cast<int64_t>(trace.iterations.size()));

  JsonValue iterations = JsonValue::Array();
  for (const IterationRecord& record : trace.iterations) {
    JsonValue entry = JsonValue::Object();
    entry.Set("iteration", record.iteration);
    entry.Set("frontier_size", record.frontier_size);
    entry.Set("frontier_repr", record.frontier_sparse ? "sparse" : "dense");
    entry.Set("edges_scanned", record.edges_scanned);
    entry.Set("edges_relaxed", record.edges_relaxed);
    entry.Set("direction", DirectionString(record.direction));
    entry.Set("seconds", record.seconds);
    iterations.Append(std::move(entry));
  }
  out.Set("iterations", std::move(iterations));
  return out;
}

JsonValue ProcessReportToJson(const std::string& name) {
  JsonValue report = JsonValue::Object();
  report.Set("name", name);
  report.Set("schema", "egraph-trace-v1");
  report.Set("metrics_compiled", kMetricsCompiled);
  report.Set("threads", ThreadPool::Current().num_threads());
  report.Set("phases", PhasesToJson());
  report.Set("metrics", MetricsToJson());

  JsonValue traces = JsonValue::Array();
  TraceSink& sink = TraceSink::Current();
  for (const EngineTrace& trace : sink.Snapshot()) {
    traces.Append(TraceToJson(trace));
  }
  report.Set("traces", std::move(traces));

  // Ring drop accounting: without these, a report with a full trace ring or
  // saturated timeline buffers looks complete when it is not.
  JsonValue trace_sink = JsonValue::Object();
  trace_sink.Set("recorded", sink.recorded());
  trace_sink.Set("dropped", sink.dropped());
  trace_sink.Set("capacity", static_cast<int64_t>(sink.capacity()));
  report.Set("trace_sink", std::move(trace_sink));
  report.Set("timeline_dropped_events",
             static_cast<int64_t>(Timeline::TotalDropped()));
  return report;
}

std::string MetricsTableString() {
  std::string out;

  Table phases({"phase", "seconds"});
  const TimingBreakdown breakdown = PhaseTimers::Get().ToBreakdown();
  phases.AddRow({"load", Table::FormatSeconds(breakdown.load_seconds)});
  phases.AddRow({"preprocess", Table::FormatSeconds(breakdown.preprocess_seconds)});
  phases.AddRow({"partition", Table::FormatSeconds(breakdown.partition_seconds)});
  phases.AddRow({"algorithm", Table::FormatSeconds(breakdown.algorithm_seconds)});
  phases.AddRow({"total", Table::FormatSeconds(breakdown.Total())});
  out += "phase breakdown\n";
  out += phases.ToString();

  const auto counters = Registry::Get().SnapshotCounters();
  if (!counters.empty()) {
    Table table({"counter", "value"});
    for (const CounterSnapshot& c : counters) {
      table.AddRow({c.name, Table::FormatCount(c.value)});
    }
    out += "counters\n";
    out += table.ToString();
  }

  const auto histograms = Registry::Get().SnapshotHistograms();
  if (!histograms.empty()) {
    Table table({"histogram", "count", "mean", "p50", "p90", "p99"});
    char buffer[32];
    for (const HistogramSnapshot& h : histograms) {
      std::snprintf(buffer, sizeof(buffer), "%.1f", h.mean);
      table.AddRow({h.name, Table::FormatCount(h.count), buffer, Table::FormatCount(h.p50),
                    Table::FormatCount(h.p90), Table::FormatCount(h.p99)});
    }
    out += "histograms\n";
    out += table.ToString();
  }
  return out;
}

bool WriteProcessReport(const std::string& path, const std::string& name) {
  const std::string json = ProcessReportToJson(name).Dump(/*indent=*/2);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "obs: cannot write trace to %s\n", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  return written == json.size();
}

}  // namespace egraph::obs
