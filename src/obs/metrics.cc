#include "src/obs/metrics.h"

#include <algorithm>

namespace egraph::obs {

namespace internal {
std::atomic<bool> g_enabled{true};
}  // namespace internal

bool Enabled() { return internal::g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Counter

Counter::Counter(std::string name)
    : name_(std::move(name)),
      shards_(static_cast<size_t>(ThreadPool::Get().num_threads())) {}

int64_t Counter::Total() const {
  int64_t total = 0;
  for (const internal::CounterShard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::CounterShard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::string name)
    : name_(std::move(name)),
      shards_(static_cast<size_t>(ThreadPool::Get().num_threads())) {}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t Histogram::Sum() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Mean() const {
  const int64_t count = Count();
  return count == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(count);
}

std::vector<int64_t> Histogram::MergedBuckets() const {
  std::vector<int64_t> merged(kBuckets, 0);
  for (const Shard& shard : shards_) {
    for (int b = 0; b < kBuckets; ++b) {
      merged[static_cast<size_t>(b)] +=
          shard.buckets[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

int64_t Histogram::Percentile(double q) const {
  const std::vector<int64_t> merged = MergedBuckets();
  int64_t total = 0;
  for (const int64_t c : merged) {
    total += c;
  }
  if (total == 0) {
    return 0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  // Rank of the q-quantile sample, 1-based; q=0 maps to the first sample.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(q * static_cast<double>(total) + 0.5));
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += merged[static_cast<size_t>(b)];
    if (seen >= rank) {
      return BucketUpperBound(b);
    }
  }
  return BucketUpperBound(kBuckets - 1);
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (int b = 0; b < kBuckets; ++b) {
      shard.buckets[static_cast<size_t>(b)].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::Get() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>(name)).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(name)).first;
  }
  return *it->second;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

std::vector<CounterSnapshot> Registry::SnapshotCounters() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<CounterSnapshot> snapshot;
  snapshot.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.push_back({name, counter->Total()});
  }
  return snapshot;
}

std::vector<HistogramSnapshot> Registry::SnapshotHistograms() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<HistogramSnapshot> snapshot;
  snapshot.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot s;
    s.name = name;
    s.count = histogram->Count();
    s.sum = histogram->Sum();
    s.mean = histogram->Mean();
    s.p50 = histogram->Percentile(0.50);
    s.p90 = histogram->Percentile(0.90);
    s.p95 = histogram->Percentile(0.95);
    s.p99 = histogram->Percentile(0.99);
    snapshot.push_back(std::move(s));
  }
  return snapshot;
}

// ---------------------------------------------------------------------------

EngineCounters& EngineCounters::Get() {
  static EngineCounters* counters = new EngineCounters{
      Registry::Get().GetCounter("engine.edgemap_calls"),
      Registry::Get().GetCounter("engine.edges_scanned"),
      Registry::Get().GetCounter("engine.edges_relaxed"),
      Registry::Get().GetCounter("frontier.to_dense"),
      Registry::Get().GetCounter("frontier.to_sparse"),
      Registry::Get().GetHistogram("engine.frontier_size"),
  };
  return *counters;
}

}  // namespace egraph::obs
