// Per-worker timeline tracing: what each thread was doing, when. Every
// thread that emits gets its own fixed-capacity event buffer (single-writer,
// so the hot path is one enabled check, two steady-clock reads and one store
// — no locks, no allocation, no shared cache lines); a full buffer drops the
// newest events and counts them instead of reallocating. Completed spans and
// instant events export as Chrome-trace-event JSON (open in Perfetto or
// chrome://tracing) plus a derived per-worker utilization / steal /
// critical-path summary — the instruments that show load imbalance, steal
// storms and loader stalls unfolding over time, which the aggregate counters
// in metrics.h cannot.
//
// The emission core is header-inline (C++17 inline variables) so that
// egraph_util's thread pool can emit pool spans without a link dependency on
// the obs library; only the exporters and the summary live in timeline.cc.
//
// Compile gate: EGRAPH_METRICS=0 compiles every emission path to nothing
// (TimelineSpan becomes an empty class, Enabled() a constant false). At
// runtime the timeline is off by default; enabling costs one relaxed load
// per span on top of the clock reads.
//
// Concurrency contract: emission is safe from any number of threads
// concurrently (each writes only its own buffer) and Snapshot() may run
// concurrently with emission (events publish via release/acquire on the
// buffer size). Reset() and SetCapacityPerThread() are cold-path calls that
// must not race with emission — call them outside parallel regions.
#ifndef SRC_OBS_TIMELINE_H_
#define SRC_OBS_TIMELINE_H_

#ifndef EGRAPH_METRICS
#define EGRAPH_METRICS 1
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace egraph::obs {

enum class TimelineEventKind : uint8_t {
  kSpan = 0,     // start_ns..start_ns+dur_ns (Chrome "X" complete event)
  kInstant = 1,  // point event at start_ns (Chrome "i")
};

struct TimelineEvent {
  const char* cat;    // static-lifetime category: "pool", "engine", ...
  const char* name;   // static-lifetime event name
  uint64_t start_ns;  // steady-clock ticks
  uint64_t dur_ns;    // 0 for instants
  int64_t arg;        // event-defined payload (chunk size, bytes, iteration)
  TimelineEventKind kind;
};

namespace timeline_internal {

inline constexpr size_t kDefaultEventsPerThread = size_t{1} << 15;

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One buffer per emitting thread, process lifetime (threads may come and go;
// their buffers stay exportable). Only the owning thread writes events and
// bumps size/dropped; size is the release/acquire publication point.
struct ThreadBuffer {
  explicit ThreadBuffer(size_t capacity) : events(capacity) {}

  std::vector<TimelineEvent> events;  // fixed capacity; never reallocated
  std::atomic<uint64_t> size{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<int> worker_id{-1};  // pool worker id, -1 for foreign threads
  int tid = 0;                     // registration order; Chrome trace tid
  std::string label;               // guarded by the registry mutex
};

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  size_t capacity = kDefaultEventsPerThread;
};

inline BufferRegistry& GetBufferRegistry() {
  static BufferRegistry* registry = new BufferRegistry();
  return *registry;
}

inline std::atomic<bool> g_timeline_enabled{false};

inline ThreadBuffer* RegisterThisThread() {
  BufferRegistry& registry = GetBufferRegistry();
  std::lock_guard<std::mutex> guard(registry.mutex);
  auto buffer = std::make_unique<ThreadBuffer>(registry.capacity);
  buffer->tid = static_cast<int>(registry.buffers.size());
  registry.buffers.push_back(std::move(buffer));
  return registry.buffers.back().get();
}

inline ThreadBuffer* Buffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    buffer = RegisterThisThread();
  }
  return buffer;
}

inline void Emit(const char* cat, const char* name, uint64_t start_ns,
                 uint64_t dur_ns, int64_t arg, TimelineEventKind kind) {
  ThreadBuffer* buffer = Buffer();
  const uint64_t n = buffer->size.load(std::memory_order_relaxed);
  if (n >= buffer->events.size()) {
    // Bounded: count the drop, never grow (growth would be an allocation on
    // the hot path and would skew exactly the timings being measured).
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->events[n] = TimelineEvent{cat, name, start_ns, dur_ns, arg, kind};
  buffer->size.store(n + 1, std::memory_order_release);
}

}  // namespace timeline_internal

class Timeline {
 public:
#if EGRAPH_METRICS
  static bool Enabled() {
    return timeline_internal::g_timeline_enabled.load(std::memory_order_relaxed);
  }
#else
  static constexpr bool Enabled() { return false; }
#endif

  static void SetEnabled(bool enabled) {
#if EGRAPH_METRICS
    timeline_internal::g_timeline_enabled.store(enabled, std::memory_order_relaxed);
#else
    (void)enabled;
#endif
  }

  // Per-thread buffer capacity, in events. Applies to buffers registered
  // after the call; Reset() re-sizes existing buffers to the new capacity.
  static void SetCapacityPerThread(size_t events) {
#if EGRAPH_METRICS
    timeline_internal::BufferRegistry& registry = timeline_internal::GetBufferRegistry();
    std::lock_guard<std::mutex> guard(registry.mutex);
    registry.capacity = events == 0 ? 1 : events;
#else
    (void)events;
#endif
  }

  // Names the calling thread's track in the exported trace ("io.reader").
  static void SetThreadLabel(const std::string& label) {
#if EGRAPH_METRICS
    if (!Enabled()) {
      return;
    }
    timeline_internal::ThreadBuffer* buffer = timeline_internal::Buffer();
    timeline_internal::BufferRegistry& registry = timeline_internal::GetBufferRegistry();
    std::lock_guard<std::mutex> guard(registry.mutex);
    buffer->label = label;
#else
    (void)label;
#endif
  }

  // Tags the calling thread with its pool worker id; called by the pool at
  // region entry (cheap: one tls lookup and a compare once registered).
  static void NoteWorker(int worker_id) {
#if EGRAPH_METRICS
    if (!Enabled()) {
      return;
    }
    timeline_internal::ThreadBuffer* buffer = timeline_internal::Buffer();
    if (buffer->worker_id.load(std::memory_order_relaxed) != worker_id) {
      buffer->worker_id.store(worker_id, std::memory_order_relaxed);
    }
#else
    (void)worker_id;
#endif
  }

  // Zeroes every buffer (and applies a pending capacity change). Must not
  // race with emission.
  static void Reset() {
#if EGRAPH_METRICS
    timeline_internal::BufferRegistry& registry = timeline_internal::GetBufferRegistry();
    std::lock_guard<std::mutex> guard(registry.mutex);
    for (auto& buffer : registry.buffers) {
      if (buffer->events.size() != registry.capacity) {
        std::vector<TimelineEvent>(registry.capacity).swap(buffer->events);
      }
      buffer->size.store(0, std::memory_order_relaxed);
      buffer->dropped.store(0, std::memory_order_relaxed);
    }
#endif
  }

  // Events dropped across all buffers since the last Reset.
  static uint64_t TotalDropped() {
#if EGRAPH_METRICS
    timeline_internal::BufferRegistry& registry = timeline_internal::GetBufferRegistry();
    std::lock_guard<std::mutex> guard(registry.mutex);
    uint64_t total = 0;
    for (const auto& buffer : registry.buffers) {
      total += buffer->dropped.load(std::memory_order_relaxed);
    }
    return total;
#else
    return 0;
#endif
  }

  struct ThreadSnapshot {
    int tid = 0;
    int worker_id = -1;
    std::string label;
    uint64_t dropped = 0;
    size_t capacity = 0;
    std::vector<TimelineEvent> events;
  };

  // Copies every buffer's published events. Safe concurrently with emission;
  // an in-flight span simply isn't included yet.
  static std::vector<ThreadSnapshot> Snapshot() {
    std::vector<ThreadSnapshot> out;
#if EGRAPH_METRICS
    timeline_internal::BufferRegistry& registry = timeline_internal::GetBufferRegistry();
    std::lock_guard<std::mutex> guard(registry.mutex);
    out.reserve(registry.buffers.size());
    for (const auto& buffer : registry.buffers) {
      ThreadSnapshot snapshot;
      snapshot.tid = buffer->tid;
      snapshot.worker_id = buffer->worker_id.load(std::memory_order_relaxed);
      snapshot.label = buffer->label;
      snapshot.dropped = buffer->dropped.load(std::memory_order_relaxed);
      snapshot.capacity = buffer->events.size();
      const uint64_t n = buffer->size.load(std::memory_order_acquire);
      snapshot.events.assign(buffer->events.begin(),
                             buffer->events.begin() + static_cast<int64_t>(n));
      out.push_back(std::move(snapshot));
    }
#endif
    return out;
  }
};

// RAII scoped span: records [construction, destruction) on the calling
// thread's track. Costs one relaxed load when the timeline is disabled and
// compiles to nothing under EGRAPH_METRICS=0.
class TimelineSpan {
 public:
#if EGRAPH_METRICS
  TimelineSpan(const char* cat, const char* name, int64_t arg = 0)
      : cat_(cat),
        name_(name),
        arg_(arg),
        start_ns_(Timeline::Enabled() ? timeline_internal::NowNs() : 0) {}

  ~TimelineSpan() {
    if (start_ns_ != 0) {
      timeline_internal::Emit(cat_, name_, start_ns_,
                              timeline_internal::NowNs() - start_ns_, arg_,
                              TimelineEventKind::kSpan);
    }
  }

 private:
  const char* cat_;
  const char* name_;
  int64_t arg_;
  uint64_t start_ns_;
#else
  TimelineSpan(const char*, const char*, int64_t = 0) {}
#endif

 public:
  TimelineSpan(const TimelineSpan&) = delete;
  TimelineSpan& operator=(const TimelineSpan&) = delete;
};

// Manual span plumbing for begin/end call pairs that cannot hold an RAII
// object (TraceSession iterations). TimelineNow() returns 0 when disabled;
// TimelineEndSpan is a no-op for a 0 start.
inline uint64_t TimelineNow() {
#if EGRAPH_METRICS
  return Timeline::Enabled() ? timeline_internal::NowNs() : 0;
#else
  return 0;
#endif
}

inline void TimelineEndSpan(const char* cat, const char* name, uint64_t start_ns,
                            int64_t arg = 0) {
#if EGRAPH_METRICS
  if (start_ns != 0 && Timeline::Enabled()) {
    timeline_internal::Emit(cat, name, start_ns,
                            timeline_internal::NowNs() - start_ns, arg,
                            TimelineEventKind::kSpan);
  }
#else
  (void)cat;
  (void)name;
  (void)start_ns;
  (void)arg;
#endif
}

inline void TimelineInstant(const char* cat, const char* name, int64_t arg = 0) {
#if EGRAPH_METRICS
  if (Timeline::Enabled()) {
    timeline_internal::Emit(cat, name, timeline_internal::NowNs(), 0, arg,
                            TimelineEventKind::kInstant);
  }
#else
  (void)cat;
  (void)name;
  (void)arg;
#endif
}

// ---------------------------------------------------------------------------
// Exporters and derived summary (defined in timeline.cc, obs library only —
// nothing in egraph_util references these).

class JsonValue;

// Applies EG_TIMELINE (enable when nonzero) and EG_TIMELINE_EVENTS (per-
// thread capacity) from the environment; returns whether tracing is enabled.
bool TimelineEnableFromEnv();

struct TimelineWorkerSummary {
  int tid = 0;
  int worker_id = -1;  // -1: not a pool worker (io.reader etc.)
  std::string label;
  uint64_t events = 0;
  uint64_t dropped = 0;
  int64_t chunks = 0;        // pool run+steal spans executed
  int64_t steals = 0;        // pool steal spans executed
  double busy_seconds = 0.0;   // sum of pool run+steal span durations
  double steal_seconds = 0.0;  // stolen-chunk share of busy
  double idle_seconds = 0.0;   // sum of pool idle span durations
};

struct TimelineSummary {
  double wall_seconds = 0.0;           // max event end - min event start
  double critical_path_seconds = 0.0;  // max per-worker busy: a lower bound
                                       // on any schedule of the same chunks
  double utilization = 0.0;            // sum busy / (wall * workers)
  double imbalance = 0.0;              // max busy / mean busy (1.0 = even)
  uint64_t dropped_events = 0;         // events lost to full buffers, all
                                       // tracks — nonzero means the summary
                                       // undercounts everything above
  std::vector<TimelineWorkerSummary> workers;
};

TimelineSummary SummarizeTimeline();

// {"traceEvents": [...], "displayTimeUnit": "ms", "egraphSummary": {...}} —
// the object form of the Chrome trace event format, with thread_name
// metadata per track; Perfetto and chrome://tracing both accept it and
// ignore the extra summary key.
JsonValue TimelineToChromeJson();

JsonValue TimelineSummaryToJson(const TimelineSummary& summary);

// Writes TimelineToChromeJson() to `path`. Returns false (and prints to
// stderr) when the file cannot be written.
bool WriteTimelineTrace(const std::string& path);

// Human-readable per-worker table of the summary.
std::string TimelineSummaryTableString();

}  // namespace egraph::obs

#endif  // SRC_OBS_TIMELINE_H_
