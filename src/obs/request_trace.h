// Serve-path request observability: one RequestTrace per served query,
// recording a monotonic timestamp at every lifecycle transition — submit,
// admission, queue dequeue, cohort formation (batched mode), execution
// start, completion — plus the epoch it pinned and, for batched queries,
// which cohort ran it and how. The engine traces (trace.h) answer "what did
// the algorithm do each round"; this answers the serving question the
// ROADMAP's production north star needs: "where did query #4182's 40 ms go —
// queue wait, cohort formation, partition rounds, or execution?"
//
// The stamps are steady-clock nanoseconds taken at phase transitions (a
// handful of clock reads per query, never per edge or per round), so they
// stay on even under EGRAPH_METRICS=0: the phase breakdown is part of the
// result a caller paid for, not optional instrumentation. Everything
// derived from the stamps — per-kind latency histograms, the slow-query
// log, exposition — is ordinary registry traffic and compiles out with the
// rest of the metrics layer.
#ifndef SRC_OBS_REQUEST_TRACE_H_
#define SRC_OBS_REQUEST_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace egraph::obs {

// Steady-clock nanoseconds, same base as the timeline's span stamps so the
// two instruments can be correlated. Always on (see header comment).
inline uint64_t RequestNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Why a query in a batched-mode session did NOT run through the
// fork-processing scheduler. kNone means it ran batched (or the session is
// isolated-mode, where the question does not arise).
enum class BatchFallback : uint8_t {
  kNone = 0,            // executed by the batch scheduler
  kIsolatedMode = 1,    // isolated-mode session: batching never considered
  kNotBatchable = 2,    // layout/direction the scheduler cannot reproduce
  kCohortTooSmall = 3,  // cohort below batch_min: bookkeeping would not pay
};

const char* BatchFallbackName(BatchFallback fallback);

// Per-query lifecycle trace. Stamps are 0 until the transition happens;
// phases are right-open intervals between consecutive stamps, so the four
// phase durations sum to Total() exactly (the acceptance property the tests
// and bench gate assert).
struct RequestTrace {
  uint64_t submit_ns = 0;       // Submit() entered
  uint64_t admit_ns = 0;        // admission decided (query accepted + queued)
  uint64_t dequeue_ns = 0;      // popped from the bounded queue
  uint64_t exec_start_ns = 0;   // Run* / RunBatch round loop began
  uint64_t done_ns = 0;         // result materialized (checksum included)

  // Epoch pin (snapshot-store sessions; 0/0 for plain-handle sessions).
  uint64_t epoch = 0;
  int64_t delta_depth_at_pin = 0;  // updates buffered behind the pinned epoch

  // Batched-mode fields. cohort_id is a session-wide sequence number (-1
  // when the query never joined a cohort); partitions/rounds describe the
  // fork-processing execution that produced the result.
  int64_t cohort_id = -1;
  int cohort_size = 0;
  int partitions = 0;
  int rounds = 0;
  BatchFallback fallback = BatchFallback::kIsolatedMode;

  // Derived breakdown, in seconds. Unset stamps collapse the corresponding
  // phase to 0 rather than producing garbage.
  double AdmissionSeconds() const { return Delta(submit_ns, admit_ns); }
  double QueueWaitSeconds() const { return Delta(admit_ns, dequeue_ns); }
  // Batched: dequeue -> cohort assembled + partitions resolved. Isolated:
  // the (tiny) gap between pop and Run*.
  double CohortFormSeconds() const { return Delta(dequeue_ns, exec_start_ns); }
  double ExecuteSeconds() const { return Delta(exec_start_ns, done_ns); }
  double TotalSeconds() const { return Delta(submit_ns, done_ns); }

  // True when every stamp is present and monotone (submit <= admit <=
  // dequeue <= exec_start <= done) — what a completed query must satisfy.
  bool Complete() const {
    return submit_ns != 0 && admit_ns >= submit_ns && dequeue_ns >= admit_ns &&
           exec_start_ns >= dequeue_ns && done_ns >= exec_start_ns;
  }

 private:
  static double Delta(uint64_t from_ns, uint64_t to_ns) {
    return (from_ns == 0 || to_ns <= from_ns)
               ? 0.0
               : static_cast<double>(to_ns - from_ns) * 1e-9;
  }
};

// One slow-query offender: the trace plus enough identity to act on it.
struct SlowQueryRecord {
  int64_t id = 0;
  std::string kind;    // query kind name ("bfs", ...)
  int worker = -1;
  bool batched = false;
  RequestTrace trace;
};

// Renders one offender as a single diagnostic line: id, kind, total, and
// the full phase breakdown (admission / queue / cohort / execute), plus the
// batched-mode fields when they apply.
std::string FormatSlowQuery(const SlowQueryRecord& record);

// Bounded newest-kept ring of queries whose total latency crossed a
// threshold. Record() is called once per completed query from the serving
// workers, so it takes a mutex (queries complete at most thousands per
// second — this is not EdgeMap's hot path). Thread-safe throughout.
class SlowQueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 128;

  explicit SlowQueryLog(double threshold_seconds,
                        size_t capacity = kDefaultCapacity);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  double threshold_seconds() const { return threshold_seconds_; }

  // Retains the record when trace.TotalSeconds() >= threshold. Returns
  // whether it qualified (retained or, if the ring was full, overwrote the
  // oldest offender and counted the displacement).
  bool MaybeRecord(const SlowQueryRecord& record);

  // Offenders, oldest to newest.
  std::vector<SlowQueryRecord> Snapshot() const;

  int64_t recorded() const;  // offenders seen (including overwritten ones)
  int64_t dropped() const;   // offenders overwritten by newer ones

 private:
  const double threshold_seconds_;
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SlowQueryRecord> records_;  // ring, at most capacity_ entries
  size_t head_ = 0;                       // oldest retained record
  int64_t recorded_ = 0;
  int64_t dropped_ = 0;
};

}  // namespace egraph::obs

#endif  // SRC_OBS_REQUEST_TRACE_H_
