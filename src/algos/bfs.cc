#include "src/algos/bfs.h"

#include "src/engine/edge_map.h"
#include "src/engine/edge_map_compressed.h"
#include "src/obs/phase.h"
#include "src/shard/edge_map_sharded.h"
#include "src/obs/trace.h"
#include "src/util/atomics.h"
#include "src/util/timer.h"

namespace egraph {
namespace {

// Claim-once functor: a vertex joins the tree when its parent slot is CASed
// from kInvalidVertex. Cond() keeps push from re-touching discovered
// vertices and gives pull its early exit.
struct BfsFunctor {
  VertexId* parent;

  bool Update(VertexId src, VertexId dst, float /*weight*/) {
    if (parent[dst] == kInvalidVertex) {
      parent[dst] = src;
      return true;
    }
    return false;
  }

  bool UpdateAtomic(VertexId src, VertexId dst, float /*weight*/) {
    return AtomicCas(&parent[dst], kInvalidVertex, src);
  }

  bool Cond(VertexId dst) const { return AtomicLoad(&parent[dst]) == kInvalidVertex; }
};

}  // namespace

BfsResult RunBfs(GraphHandle& handle, VertexId source, const RunConfig& config,
                 ExecutionContext& ctx) {
  ExecutionContext::Scope exec_scope(ctx);
  PrepareForRun(handle, config);
  BfsResult result;
  const VertexId n = handle.num_vertices();
  result.parent.assign(n, kInvalidVertex);
  if (source >= n) {
    return result;
  }

  Timer total;
  obs::ScopedPhase phase(obs::Phase::kAlgorithm);
  obs::TraceSession trace(result.stats.trace, "bfs", config.layout, config.direction,
                          config.sync);
  result.parent[source] = source;
  BfsFunctor func{result.parent.data()};
  Frontier frontier = Frontier::Single(n, source);
  EdgeMapOptions edge_map;
  edge_map.sync = config.sync;
  edge_map.balance = config.balance;
  edge_map.locks = &handle.locks();
  edge_map.scratch = &ctx.edge_map_scratch();

  while (!frontier.Empty()) {
    Timer iteration;
    result.stats.frontier_sizes.push_back(frontier.Count());
    trace.BeginIteration(frontier.Count(), frontier.has_sparse());
    Direction used = config.direction;
    Frontier next;
    switch (config.layout) {
      case Layout::kAdjacency: {
        switch (config.direction) {
          case Direction::kPush:
            next = EdgeMapCsrPush(handle.out_csr(), frontier, func, edge_map);
            break;
          case Direction::kPull:
            next = EdgeMapCsrPull(handle.in_csr(), frontier, func, edge_map);
            break;
          case Direction::kPushPull: {
            bool used_pull = false;
            next = EdgeMapCsrPushPull(handle.out_csr(), handle.in_csr(), frontier, func,
                                      edge_map, config.pushpull, &used_pull);
            result.stats.used_pull.push_back(used_pull);
            used = used_pull ? Direction::kPull : Direction::kPush;
            break;
          }
        }
        break;
      }
      case Layout::kCompressed: {
        switch (config.direction) {
          case Direction::kPush:
            next = EdgeMapCompressedPush(handle.compressed_out(), frontier, func, edge_map);
            break;
          case Direction::kPull:
            next = EdgeMapCompressedPull(handle.compressed_in(), frontier, func, edge_map);
            break;
          case Direction::kPushPull: {
            bool used_pull = false;
            next = EdgeMapCompressedPushPull(handle.compressed_out(), handle.compressed_in(),
                                             frontier, func, edge_map, config.pushpull,
                                             &used_pull);
            result.stats.used_pull.push_back(used_pull);
            used = used_pull ? Direction::kPull : Direction::kPush;
            break;
          }
        }
        break;
      }
      case Layout::kEdgeArray:
        next = EdgeMapEdgeArray(handle.edges(), frontier, func, edge_map);
        break;
      case Layout::kGrid:
        next = EdgeMapGrid(handle.grid(), frontier, func, edge_map);
        break;
      case Layout::kSharded: {
        switch (config.direction) {
          case Direction::kPush:
            next = EdgeMapShardedPush(handle.out_csr(), handle.sharded(), frontier, func,
                                      edge_map);
            break;
          case Direction::kPull:
            next = EdgeMapShardedPull(handle.in_csr(), handle.sharded(), frontier, func,
                                      edge_map);
            break;
          case Direction::kPushPull: {
            bool used_pull = false;
            next = EdgeMapShardedPushPull(handle.out_csr(), handle.in_csr(), handle.sharded(),
                                          frontier, func, edge_map, config.pushpull,
                                          &used_pull);
            result.stats.used_pull.push_back(used_pull);
            used = used_pull ? Direction::kPull : Direction::kPush;
            break;
          }
        }
        break;
      }
    }
    frontier = std::move(next);
    trace.EndIteration(used);
    result.stats.per_iteration_seconds.push_back(iteration.Seconds());
    ++result.stats.iterations;
  }
  result.stats.algorithm_seconds = total.Seconds();
  return result;
}

}  // namespace egraph
