// Weakly connected components via label propagation: every vertex starts
// with its own id as label; the minimum label floods each component.
//
// Layout note (paper section 8): on adjacency lists the input must be
// symmetrized first (EdgeList::MakeUndirected), doubling the CSR build cost —
// charge it as pre-processing. Edge arrays and grids need no symmetrization:
// the scan propagates labels in both directions of each stored edge.
#ifndef SRC_ALGOS_WCC_H_
#define SRC_ALGOS_WCC_H_

#include <vector>

#include "src/algos/common.h"

namespace egraph {

struct WccResult {
  // label[v] = smallest vertex id in v's weakly connected component.
  std::vector<VertexId> label;
  AlgoStats stats;
};

// For Layout::kAdjacency the handle's edge list must already be undirected.
WccResult RunWcc(GraphHandle& handle, const RunConfig& config,
                 ExecutionContext& ctx = ExecutionContext::Default());

}  // namespace egraph

#endif  // SRC_ALGOS_WCC_H_
