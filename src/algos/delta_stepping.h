// Delta-stepping SSSP (Meyer & Sanders): bucketed relaxation that processes
// vertices in distance bands of width delta — light edges (w < delta) are
// relaxed to fixpoint within a bucket, heavy edges once per bucket. The
// classic middle ground between Dijkstra (work-efficient, serial) and the
// frontier Bellman-Ford in sssp.h (parallel, work-redundant); included as a
// library extension and ablation partner for SSSP.
#ifndef SRC_ALGOS_DELTA_STEPPING_H_
#define SRC_ALGOS_DELTA_STEPPING_H_

#include "src/algos/sssp.h"

namespace egraph {

struct DeltaSteppingOptions {
  // Bucket width; <= 0 picks delta = avg edge weight (a standard default).
  float delta = 0.0f;
};

// Runs delta-stepping over the out-CSR (built on demand). Returns the same
// result type as RunSssp; stats.iterations counts processed buckets.
SsspResult RunSsspDeltaStepping(GraphHandle& handle, VertexId source,
                                const DeltaSteppingOptions& options, const RunConfig& config,
                                ExecutionContext& ctx = ExecutionContext::Default());

}  // namespace egraph

#endif  // SRC_ALGOS_DELTA_STEPPING_H_
