// Whole-graph analytics built from the library's primitives: clustering
// coefficient (triangles / wedges) and a double-sweep diameter estimate.
// These are the summary statistics a practitioner computes before choosing
// a configuration with the section-9 advisor (diameter and degree shape are
// exactly what the paper's roadmap branches on).
#ifndef SRC_ALGOS_ANALYTICS_H_
#define SRC_ALGOS_ANALYTICS_H_

#include <cstdint>

#include "src/graph/edge_list.h"

namespace egraph {

// Global clustering coefficient of the undirected simple view:
// 3 * triangles / wedges, in [0, 1]. 0 when the graph has no wedges.
// Symmetrizes/deduplicates internally (the input is taken as directed).
double GlobalClusteringCoefficient(const EdgeList& graph);

// Diameter lower bound via the double-sweep heuristic over the undirected
// view: BFS from `seed`, then BFS from the farthest vertex found; repeat
// `sweeps` times, chaining the farthest endpoints. Exact on trees; a tight
// lower bound in practice.
uint32_t EstimateDiameter(const EdgeList& graph, int sweeps = 2, VertexId seed = 0);

}  // namespace egraph

#endif  // SRC_ALGOS_ANALYTICS_H_
