// Betweenness centrality (Brandes) over unweighted directed graphs, the
// standard frontier-parallel formulation (as in Ligra's BC): a forward BFS
// accumulates shortest-path counts per level; a backward sweep over the
// levels accumulates dependencies. Exact for the given sources; pass a
// sample of sources for the usual approximation.
#ifndef SRC_ALGOS_BETWEENNESS_H_
#define SRC_ALGOS_BETWEENNESS_H_

#include <span>
#include <vector>

#include "src/algos/common.h"

namespace egraph {

struct BcResult {
  // Accumulated dependency scores; for the full source set this is the
  // (directed, unnormalized) betweenness centrality.
  std::vector<double> centrality;
  AlgoStats stats;
};

// Runs Brandes from each source in turn (each source's BFS and back-sweep
// are internally parallel). Uses the out-CSR.
BcResult RunBetweenness(GraphHandle& handle, std::span<const VertexId> sources,
                        const RunConfig& config,
                        ExecutionContext& ctx = ExecutionContext::Default());

// Sequential reference (textbook Brandes) for tests.
std::vector<double> RefBetweenness(const EdgeList& graph,
                                   std::span<const VertexId> sources);

}  // namespace egraph

#endif  // SRC_ALGOS_BETWEENNESS_H_
