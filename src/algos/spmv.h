// Sparse matrix-vector multiplication: y = A x, where A is the graph's
// (weighted) adjacency matrix with A[dst][src] = weight of edge src -> dst.
// A single pass over the graph — the paper's example of an algorithm where
// any pre-processing is pure loss, making the edge array the best layout.
#ifndef SRC_ALGOS_SPMV_H_
#define SRC_ALGOS_SPMV_H_

#include <vector>

#include "src/algos/common.h"

namespace egraph {

struct SpmvResult {
  std::vector<float> y;
  AlgoStats stats;
};

// Computes y[dst] = sum over edges (src -> dst) of weight * x[src].
// `x` must have num_vertices entries.
SpmvResult RunSpmv(GraphHandle& handle, const std::vector<float>& x, const RunConfig& config,
                   ExecutionContext& ctx = ExecutionContext::Default());

}  // namespace egraph

#endif  // SRC_ALGOS_SPMV_H_
