// Alternating Least Squares for rating prediction (Zhou et al., the Netflix
// Prize approach the paper cites). The graph is bipartite: users
// [0, num_users) rate items [num_users, num_vertices); edge weights are
// ratings. Each iteration solves every user's factor vector from the fixed
// item factors, then every item's from the fixed user factors — so exactly
// one side of the graph is active per half-step, which is why the paper
// finds adjacency lists (pull, lock-free) the best layout for ALS.
#ifndef SRC_ALGOS_ALS_H_
#define SRC_ALGOS_ALS_H_

#include <vector>

#include "src/algos/common.h"

namespace egraph {

struct AlsOptions {
  int rank = 8;          // latent factor dimension
  int iterations = 10;   // full user+item sweeps
  float lambda = 0.1f;   // ridge regularization
  uint64_t seed = 1;     // factor initialization
};

struct AlsResult {
  // Row-major factors: user u -> user_factors[u*rank .. u*rank+rank).
  std::vector<float> user_factors;
  // Item i (0-based, i.e. vertex num_users + i) -> item_factors[i*rank ...).
  std::vector<float> item_factors;
  // Training RMSE after each iteration (strictly decreasing on well-posed
  // inputs; test invariant).
  std::vector<double> rmse_per_iteration;
  AlgoStats stats;
};

// Runs ALS. The handle's graph must be weighted bipartite (user -> item).
// ALS is inherently vertex-centric: both CSR directions are built during
// pre-processing regardless of config.layout (kept for API uniformity;
// sync/direction fields are ignored — each factor solve owns its vertex).
AlsResult RunAls(GraphHandle& handle, uint32_t num_users, const AlsOptions& options,
                 const RunConfig& config,
                 ExecutionContext& ctx = ExecutionContext::Default());

}  // namespace egraph

#endif  // SRC_ALGOS_ALS_H_
