// Single-source shortest paths: frontier-driven Bellman-Ford relaxation.
// Like BFS but a vertex may re-enter the frontier whenever its distance
// improves, so iterations and per-iteration activity are both higher (the
// paper's section 8 contrast between BFS and SSSP). Requires edge weights;
// unweighted graphs relax with weight 1 (hop distance).
#ifndef SRC_ALGOS_SSSP_H_
#define SRC_ALGOS_SSSP_H_

#include <vector>

#include "src/algos/common.h"

namespace egraph {

struct SsspResult {
  // dist[v] = length of the shortest path source -> v; +inf if unreachable.
  std::vector<float> dist;
  AlgoStats stats;
};

SsspResult RunSssp(GraphHandle& handle, VertexId source, const RunConfig& config,
                   ExecutionContext& ctx = ExecutionContext::Default());

}  // namespace egraph

#endif  // SRC_ALGOS_SSSP_H_
