#include "src/algos/betweenness.h"

#include <limits>
#include <queue>
#include <stack>

#include "src/engine/scan.h"
#include "src/util/atomics.h"
#include "src/util/bitmap.h"
#include "src/util/parallel.h"
#include "src/util/timer.h"

namespace egraph {

BcResult RunBetweenness(GraphHandle& handle, std::span<const VertexId> sources,
                        const RunConfig& config, ExecutionContext& ctx) {
  ExecutionContext::Scope exec_scope(ctx);
  RunConfig bc_config = config;
  bc_config.layout = Layout::kAdjacency;
  bc_config.direction = Direction::kPush;
  PrepareForRun(handle, bc_config);

  BcResult result;
  const VertexId n = handle.num_vertices();
  result.centrality.assign(n, 0.0);
  if (n == 0) {
    return result;
  }
  const Csr& out = handle.out_csr();
  const int workers = ThreadPool::Current().num_threads();

  Timer total;
  std::vector<uint32_t> level(n);
  std::vector<double> sigma(n);  // shortest-path counts
  std::vector<double> delta(n);  // dependency accumulators
  constexpr uint32_t kUnreached = std::numeric_limits<uint32_t>::max();

  for (const VertexId source : sources) {
    if (source >= n) {
      continue;
    }
    Timer iteration;
    VertexMap(n, [&](VertexId v) {
      level[v] = kUnreached;
      sigma[v] = 0.0;
      delta[v] = 0.0;
    });
    level[source] = 0;
    sigma[source] = 1.0;

    // Forward phase: level-synchronous BFS; sigma[v] accumulates the path
    // counts of all level-(d-1) predecessors (atomic adds: several
    // predecessors may discover v in the same level).
    std::vector<std::vector<VertexId>> levels;
    levels.push_back({source});
    while (true) {
      const std::vector<VertexId>& frontier = levels.back();
      const uint32_t depth = static_cast<uint32_t>(levels.size() - 1);
      std::vector<std::vector<VertexId>> buffers(static_cast<size_t>(workers));
      Bitmap discovered(n);
      ParallelForChunks(0, static_cast<int64_t>(frontier.size()), /*grain=*/64,
                        [&](int64_t lo, int64_t hi, int worker) {
                          for (int64_t i = lo; i < hi; ++i) {
                            const VertexId u = frontier[static_cast<size_t>(i)];
                            const double su = sigma[u];
                            for (const VertexId v : out.Neighbors(u)) {
                              // Claim-or-join: v belongs to the next level if
                              // undiscovered; path counts add either way.
                              if (AtomicCas(&level[v], kUnreached, depth + 1) &&
                                  discovered.TestAndSet(v)) {
                                buffers[static_cast<size_t>(worker)].push_back(v);
                              }
                              if (AtomicLoad(&level[v]) == depth + 1) {
                                AtomicAdd(&sigma[v], su);
                              }
                            }
                          }
                        });
      std::vector<VertexId> next;
      for (auto& b : buffers) {
        next.insert(next.end(), b.begin(), b.end());
      }
      if (next.empty()) {
        break;
      }
      levels.push_back(std::move(next));
    }

    // Backward phase: process levels deepest-first; each vertex gathers from
    // its successors (out-neighbors one level deeper) — writes are to the
    // vertex itself, so no synchronization is needed within a level.
    for (size_t d = levels.size(); d-- > 1;) {
      const std::vector<VertexId>& frontier = levels[d - 1];
      ParallelForGrain(0, static_cast<int64_t>(frontier.size()), /*grain=*/64,
                       [&](int64_t i) {
                         const VertexId v = frontier[static_cast<size_t>(i)];
                         double acc = 0.0;
                         for (const VertexId w : out.Neighbors(v)) {
                           if (level[w] == level[v] + 1 && sigma[w] > 0.0) {
                             acc += sigma[v] / sigma[w] * (1.0 + delta[w]);
                           }
                         }
                         delta[v] = acc;
                       });
    }
    VertexMap(n, [&](VertexId v) {
      if (v != source && level[v] != kUnreached) {
        result.centrality[v] += delta[v];
      }
    });
    result.stats.per_iteration_seconds.push_back(iteration.Seconds());
    ++result.stats.iterations;
  }
  result.stats.algorithm_seconds = total.Seconds();
  return result;
}

std::vector<double> RefBetweenness(const EdgeList& graph,
                                   std::span<const VertexId> sources) {
  const VertexId n = graph.num_vertices();
  std::vector<double> centrality(n, 0.0);
  // Sequential adjacency.
  std::vector<std::vector<VertexId>> adj(n);
  for (const Edge& e : graph.edges()) {
    adj[e.src].push_back(e.dst);
  }
  for (const VertexId source : sources) {
    if (source >= n) {
      continue;
    }
    std::vector<int64_t> dist(n, -1);
    std::vector<double> sigma(n, 0.0);
    std::vector<double> delta(n, 0.0);
    std::vector<std::vector<VertexId>> predecessors(n);
    std::stack<VertexId> order;
    std::queue<VertexId> queue;
    dist[source] = 0;
    sigma[source] = 1.0;
    queue.push(source);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop();
      order.push(u);
      for (const VertexId v : adj[u]) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          queue.push(v);
        }
        if (dist[v] == dist[u] + 1) {
          sigma[v] += sigma[u];
          predecessors[v].push_back(u);
        }
      }
    }
    while (!order.empty()) {
      const VertexId w = order.top();
      order.pop();
      for (const VertexId v : predecessors[w]) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != source) {
        centrality[w] += delta[w];
      }
    }
  }
  return centrality;
}

}  // namespace egraph
