// Sequential reference implementations used to validate every parallel
// configuration in the test suite. Deliberately simple and obviously
// correct; not measured by any benchmark.
#ifndef SRC_ALGOS_REFERENCE_H_
#define SRC_ALGOS_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "src/graph/edge_list.h"

namespace egraph {

// BFS hop distance from `source` over directed edges; UINT32_MAX when
// unreachable.
std::vector<uint32_t> RefBfsLevels(const EdgeList& graph, VertexId source);

// Dijkstra shortest-path distances from `source` (weights must be >= 0;
// unweighted edges count as 1). +inf when unreachable.
std::vector<float> RefDijkstra(const EdgeList& graph, VertexId source);

// Weakly-connected-component labels via union-find, canonicalized to the
// smallest vertex id in each component.
std::vector<VertexId> RefWccLabels(const EdgeList& graph);

// Sequential Pagerank with the same teleport + dangling handling as
// RunPagerank.
std::vector<float> RefPagerank(const EdgeList& graph, int iterations, float damping);

// Sequential y = A x with A[dst][src] = weight(src -> dst).
std::vector<float> RefSpmv(const EdgeList& graph, const std::vector<float>& x);

}  // namespace egraph

#endif  // SRC_ALGOS_REFERENCE_H_
