#include "src/algos/als.h"

#include <cmath>

#include "src/algos/linalg.h"
#include "src/engine/scan.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace egraph {
namespace {

// Solves the ridge normal equations for one vertex: given the fixed factors
// of its neighbors (q_j) and ratings r_j, find p minimizing
// sum_j (r_j - p.q_j)^2 + lambda * |p|^2.
void SolveVertex(std::span<const VertexId> neighbors, std::span<const float> ratings,
                 const float* fixed_factors, VertexId fixed_base, int rank, float lambda,
                 float* out) {
  const int k = rank;
  std::vector<double> a(static_cast<size_t>(k) * k, 0.0);
  std::vector<double> b(static_cast<size_t>(k), 0.0);
  for (size_t j = 0; j < neighbors.size(); ++j) {
    const float* q = fixed_factors + static_cast<size_t>(neighbors[j] - fixed_base) * k;
    const double r = ratings.empty() ? 1.0 : ratings[j];
    for (int x = 0; x < k; ++x) {
      b[x] += r * q[x];
      for (int y = 0; y <= x; ++y) {
        a[static_cast<size_t>(x) * k + y] += static_cast<double>(q[x]) * q[y];
      }
    }
  }
  // Symmetrize and regularize (lambda scaled by the rating count, the
  // weighted-lambda variant of Zhou et al.).
  const double reg = lambda * static_cast<double>(neighbors.empty() ? 1 : neighbors.size());
  for (int x = 0; x < k; ++x) {
    for (int y = x + 1; y < k; ++y) {
      a[static_cast<size_t>(x) * k + y] = a[static_cast<size_t>(y) * k + x];
    }
    a[static_cast<size_t>(x) * k + x] += reg;
  }
  if (!CholeskySolveInPlace(a.data(), b.data(), k)) {
    // Degenerate system (should not happen with reg > 0): keep old factors.
    return;
  }
  for (int x = 0; x < k; ++x) {
    out[x] = static_cast<float>(b[x]);
  }
}

}  // namespace

AlsResult RunAls(GraphHandle& handle, uint32_t num_users, const AlsOptions& options,
                 const RunConfig& config, ExecutionContext& ctx) {
  ExecutionContext::Scope exec_scope(ctx);
  // ALS alternates over both sides: it always needs both CSR directions.
  RunConfig als_config = config;
  als_config.layout = Layout::kAdjacency;
  als_config.direction = Direction::kPushPull;  // forces out + in CSRs
  PrepareForRun(handle, als_config);

  AlsResult result;
  const VertexId n = handle.num_vertices();
  const uint32_t num_items = n - num_users;
  const int k = options.rank;

  Timer total;
  result.user_factors.assign(static_cast<size_t>(num_users) * k, 0.0f);
  result.item_factors.assign(static_cast<size_t>(num_items) * k, 0.0f);
  {
    // Small random initialization, deterministic per vertex.
    ParallelFor(0, static_cast<int64_t>(num_users), [&](int64_t u) {
      uint64_t stream = options.seed ^ static_cast<uint64_t>(u);
      Xoshiro256 rng(SplitMix64(stream));
      for (int x = 0; x < k; ++x) {
        result.user_factors[static_cast<size_t>(u) * k + x] = 0.1f + 0.5f * rng.NextFloat();
      }
    });
    ParallelFor(0, static_cast<int64_t>(num_items), [&](int64_t i) {
      uint64_t stream = options.seed ^ (0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(i));
      Xoshiro256 rng(SplitMix64(stream));
      for (int x = 0; x < k; ++x) {
        result.item_factors[static_cast<size_t>(i) * k + x] = 0.1f + 0.5f * rng.NextFloat();
      }
    });
  }

  const Csr& by_user = handle.out_csr();  // user -> rated items
  const Csr& by_item = handle.in_csr();   // item -> rating users

  for (int iter = 0; iter < options.iterations; ++iter) {
    Timer iteration;
    // Half-step 1: users from items (active side: users).
    ParallelForGrain(0, static_cast<int64_t>(num_users), /*grain=*/64, [&](int64_t u) {
      const VertexId v = static_cast<VertexId>(u);
      SolveVertex(by_user.Neighbors(v), by_user.Weights(v), result.item_factors.data(),
                  num_users, k, options.lambda,
                  result.user_factors.data() + static_cast<size_t>(u) * k);
    });
    // Half-step 2: items from users (active side: items).
    ParallelForGrain(0, static_cast<int64_t>(num_items), /*grain=*/16, [&](int64_t i) {
      const VertexId v = static_cast<VertexId>(num_users + i);
      SolveVertex(by_item.Neighbors(v), by_item.Weights(v), result.user_factors.data(),
                  0, k, options.lambda,
                  result.item_factors.data() + static_cast<size_t>(i) * k);
    });

    // Training RMSE over all ratings.
    const auto& edges = handle.edges().edges();
    const double sse = ParallelReduceSum<double>(
        0, static_cast<int64_t>(edges.size()), [&](int64_t e) {
          const Edge& edge = edges[static_cast<size_t>(e)];
          const float* p = result.user_factors.data() + static_cast<size_t>(edge.src) * k;
          const float* q =
              result.item_factors.data() + static_cast<size_t>(edge.dst - num_users) * k;
          double dot = 0.0;
          for (int x = 0; x < k; ++x) {
            dot += static_cast<double>(p[x]) * q[x];
          }
          const double err = handle.edges().EdgeWeight(static_cast<EdgeIndex>(e)) - dot;
          return err * err;
        });
    result.rmse_per_iteration.push_back(
        std::sqrt(sse / static_cast<double>(edges.empty() ? 1 : edges.size())));
    result.stats.per_iteration_seconds.push_back(iteration.Seconds());
    ++result.stats.iterations;
  }
  result.stats.algorithm_seconds = total.Seconds();
  return result;
}

}  // namespace egraph
