#include "src/algos/pagerank.h"

#include "src/engine/scan.h"
#include "src/graph/stats.h"
#include "src/obs/phase.h"
#include "src/shard/edge_map_sharded.h"
#include "src/obs/trace.h"
#include "src/util/atomics.h"
#include "src/util/parallel.h"
#include "src/util/spinlock.h"
#include "src/util/timer.h"

namespace egraph {

PagerankResult RunPagerank(GraphHandle& handle, const PagerankOptions& options,
                           const RunConfig& config, ExecutionContext& ctx) {
  ExecutionContext::Scope exec_scope(ctx);
  PrepareForRun(handle, config);
  PagerankResult result;
  const VertexId n = handle.num_vertices();
  if (n == 0) {
    return result;
  }

  Timer total;
  obs::ScopedPhase phase(obs::Phase::kAlgorithm);
  obs::TraceSession trace(result.stats.trace, "pagerank", config.layout, config.direction,
                          config.sync);
  // Out-degrees are part of the algorithm phase: the edge-array layout has
  // no pre-processing, so everything it needs beyond the raw input counts
  // as computation (consistent with the paper's 0.0s pre-processing rows).
  std::vector<uint32_t> degree;
  if (handle.has_out_csr() &&
      (config.layout == Layout::kAdjacency || config.layout == Layout::kSharded)) {
    degree.resize(n);
    const Csr& out = handle.out_csr();
    VertexMap(n, [&](VertexId v) { degree[v] = out.Degree(v); });
  } else if (handle.has_compressed_out() && config.layout == Layout::kCompressed) {
    degree.resize(n);
    const CompressedCsr& out = handle.compressed_out();
    VertexMap(n, [&](VertexId v) { degree[v] = out.Degree(v); });
  } else {
    degree = OutDegrees(handle.edges());
  }

  std::vector<float> rank(n, 1.0f / static_cast<float>(n));
  std::vector<float> contrib(n, 0.0f);
  std::vector<float> next(n, 0.0f);
  StripedLocks& locks = handle.locks();
  const float base_teleport = (1.0f - options.damping) / static_cast<float>(n);

  for (int iter = 0; iter < options.iterations; ++iter) {
    Timer iteration;
    trace.BeginIteration(n, /*frontier_sparse=*/false);
    // Per-vertex contribution; dangling vertices spread their mass uniformly.
    // The deterministic reduction keeps the dangling mass — and therefore the
    // whole rank sequence — bit-identical across pool sizes, so the serve
    // layer can cross-check isolated and batched executions exactly.
    double dangling = ParallelReduceSumDeterministic<double>(0, static_cast<int64_t>(n),
                                                             [&](int64_t v) {
      if (degree[static_cast<size_t>(v)] == 0) {
        return static_cast<double>(rank[static_cast<size_t>(v)]);
      }
      contrib[static_cast<size_t>(v)] = rank[static_cast<size_t>(v)] /
                                        static_cast<float>(degree[static_cast<size_t>(v)]);
      return 0.0;
    });
    VertexMap(n, [&](VertexId v) {
      if (degree[v] == 0) {
        contrib[v] = 0.0f;
      }
      next[v] = 0.0f;
    });

    auto add_locked = [&](VertexId src, VertexId dst, float /*w*/) {
      SpinlockGuard guard(locks.For(dst));
      next[dst] += contrib[src];
    };
    auto add_atomic = [&](VertexId src, VertexId dst, float /*w*/) {
      AtomicAdd(&next[dst], contrib[src]);
    };
    auto add_plain = [&](VertexId src, VertexId dst, float /*w*/) {
      next[dst] += contrib[src];
    };

    switch (config.layout) {
      case Layout::kAdjacency:
        if (config.direction == Direction::kPull) {
          // Gather from in-neighbors; each dst written by one thread.
          ScanCsrByDestination(handle.in_csr(), config.balance,
                               [&](VertexId dst, std::span<const VertexId> sources,
                                   std::span<const float> /*weights*/) {
                                 float sum = 0.0f;
                                 for (const VertexId src : sources) {
                                   sum += contrib[src];
                                 }
                                 next[dst] = sum;
                               });
        } else if (config.sync == Sync::kLocks) {
          ScanCsrBySource(handle.out_csr(), config.balance, add_locked);
        } else {
          ScanCsrBySource(handle.out_csr(), config.balance, add_atomic);
        }
        break;
      case Layout::kCompressed:
        if (config.direction == Direction::kPull) {
          // Gather from compressed in-chunks, decoded in ascending neighbor
          // order — the same order a sorted plain CSR gathers in, so the
          // float sums (and thus the ranks) match it bit for bit.
          ScanCompressedByDestination(handle.compressed_in(), config.balance,
                                      [&](VertexId dst, auto&& decode) {
                                        float sum = 0.0f;
                                        decode([&](VertexId src, float /*w*/) {
                                          sum += contrib[src];
                                        });
                                        next[dst] = sum;
                                      });
        } else if (config.sync == Sync::kLocks) {
          ScanCompressedBySource(handle.compressed_out(), config.balance, add_locked);
        } else {
          ScanCompressedBySource(handle.compressed_out(), config.balance, add_atomic);
        }
        break;
      case Layout::kEdgeArray:
        if (config.sync == Sync::kLocks) {
          ScanEdgeArray(handle.edges(), add_locked);
        } else {
          ScanEdgeArray(handle.edges(), add_atomic);
        }
        break;
      case Layout::kGrid:
        if (config.sync == Sync::kLockFree) {
          // Column ownership: all writes to a destination block come from
          // one thread — plain adds, no locks (paper Fig. 8's winner).
          ScanGridColumnOwned(handle.grid(), add_plain);
        } else if (config.sync == Sync::kLocks) {
          ScanGridRowMajor(handle.grid(), config.balance, add_locked);
        } else {
          ScanGridRowMajor(handle.grid(), config.balance, add_atomic);
        }
        break;
      case Layout::kSharded:
        if (config.direction == Direction::kPull) {
          // Owner-partitioned gather in the same per-destination order as
          // the adjacency pull, so the ranks match it bit for bit.
          ShardScanByDestination(handle.in_csr(), handle.sharded(),
                                 [&](VertexId dst, std::span<const VertexId> sources,
                                     std::span<const float> /*weights*/) {
                                   float sum = 0.0f;
                                   for (const VertexId src : sources) {
                                     sum += contrib[src];
                                   }
                                   next[dst] = sum;
                                 });
        } else {
          // Shard ownership makes every apply exclusive in both phases —
          // plain adds, no locks, remote mass rides the aggregation buffers.
          ShardScanBySource(handle.out_csr(), handle.sharded(), add_plain);
        }
        break;
    }

    const float teleport = base_teleport + options.damping *
                                               static_cast<float>(dangling) /
                                               static_cast<float>(n);
    VertexMap(n, [&](VertexId v) { next[v] = teleport + options.damping * next[v]; });
    rank.swap(next);
    trace.EndIteration(config.direction);
    result.stats.per_iteration_seconds.push_back(iteration.Seconds());
    ++result.stats.iterations;
  }

  result.rank = std::move(rank);
  result.stats.algorithm_seconds = total.Seconds();
  return result;
}

}  // namespace egraph
