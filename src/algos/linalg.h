// Minimal dense linear algebra for ALS: Cholesky factorization and solve of
// small (k x k) symmetric positive definite systems, the per-vertex normal
// equations of alternating least squares.
#ifndef SRC_ALGOS_LINALG_H_
#define SRC_ALGOS_LINALG_H_

#include <cmath>
#include <cstddef>

namespace egraph {

// Solves A x = b in place for symmetric positive definite A (k x k, row
// major). On return b holds x; A holds its Cholesky factor. Returns false if
// A is not positive definite (caller should regularize and retry).
inline bool CholeskySolveInPlace(double* a, double* b, int k) {
  // Factor A = L L^T (lower triangle of `a`).
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a[static_cast<size_t>(i) * k + j];
      for (int p = 0; p < j; ++p) {
        sum -= a[static_cast<size_t>(i) * k + p] * a[static_cast<size_t>(j) * k + p];
      }
      if (i == j) {
        if (sum <= 0.0) {
          return false;
        }
        a[static_cast<size_t>(i) * k + j] = std::sqrt(sum);
      } else {
        a[static_cast<size_t>(i) * k + j] = sum / a[static_cast<size_t>(j) * k + j];
      }
    }
  }
  // Forward substitution: L y = b.
  for (int i = 0; i < k; ++i) {
    double sum = b[i];
    for (int p = 0; p < i; ++p) {
      sum -= a[static_cast<size_t>(i) * k + p] * b[p];
    }
    b[i] = sum / a[static_cast<size_t>(i) * k + i];
  }
  // Back substitution: L^T x = y.
  for (int i = k - 1; i >= 0; --i) {
    double sum = b[i];
    for (int p = i + 1; p < k; ++p) {
      sum -= a[static_cast<size_t>(p) * k + i] * b[p];
    }
    b[i] = sum / a[static_cast<size_t>(i) * k + i];
  }
  return true;
}

}  // namespace egraph

#endif  // SRC_ALGOS_LINALG_H_
