// Triangle counting on undirected simple graphs via degree-ordered
// intersection: orient each edge from lower-rank to higher-rank endpoint
// (rank = degree, ties by id), then count, for every oriented edge (u, v),
// the common out-neighbors of u and v. The standard multicore formulation
// (used e.g. by Ligra and GAP); a compute-bound contrast to the paper's
// memory-bound kernels.
#ifndef SRC_ALGOS_TRIANGLES_H_
#define SRC_ALGOS_TRIANGLES_H_

#include <cstdint>

#include "src/algos/common.h"

namespace egraph {

struct TriangleResult {
  uint64_t triangles = 0;
  AlgoStats stats;
};

// Counts triangles in the *undirected simple* view of the handle's graph:
// the handle must hold a symmetrized, deduplicated, loop-free edge list
// (MakeUndirected + RemoveSelfLoops + RemoveDuplicateEdges).
TriangleResult RunTriangleCount(GraphHandle& handle, const RunConfig& config,
                                ExecutionContext& ctx = ExecutionContext::Default());

// Brute-force reference for tests, O(V^3) — small graphs only.
uint64_t RefTriangleCount(const EdgeList& undirected_simple);

}  // namespace egraph

#endif  // SRC_ALGOS_TRIANGLES_H_
