#include "src/algos/reference.h"

#include <cstddef>
#include <limits>
#include <queue>

namespace egraph {
namespace {

// Sequential out-adjacency for the reference traversals.
struct SeqAdjacency {
  std::vector<uint64_t> offsets;
  std::vector<VertexId> neighbors;
  std::vector<float> weights;

  explicit SeqAdjacency(const EdgeList& graph) {
    const VertexId n = graph.num_vertices();
    offsets.assign(static_cast<size_t>(n) + 1, 0);
    for (const Edge& e : graph.edges()) {
      ++offsets[e.src + 1];
    }
    for (VertexId v = 0; v < n; ++v) {
      offsets[v + 1] += offsets[v];
    }
    neighbors.resize(graph.num_edges());
    weights.resize(graph.num_edges());
    std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (size_t i = 0; i < graph.edges().size(); ++i) {
      const Edge& e = graph.edges()[i];
      neighbors[cursor[e.src]] = e.dst;
      weights[cursor[e.src]] = graph.EdgeWeight(i);
      ++cursor[e.src];
    }
  }
};

}  // namespace

std::vector<uint32_t> RefBfsLevels(const EdgeList& graph, VertexId source) {
  const VertexId n = graph.num_vertices();
  std::vector<uint32_t> level(n, std::numeric_limits<uint32_t>::max());
  if (source >= n) {
    return level;
  }
  SeqAdjacency adj(graph);
  std::queue<VertexId> queue;
  level[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop();
    for (uint64_t i = adj.offsets[u]; i < adj.offsets[u + 1]; ++i) {
      const VertexId v = adj.neighbors[i];
      if (level[v] == std::numeric_limits<uint32_t>::max()) {
        level[v] = level[u] + 1;
        queue.push(v);
      }
    }
  }
  return level;
}

std::vector<float> RefDijkstra(const EdgeList& graph, VertexId source) {
  const VertexId n = graph.num_vertices();
  std::vector<float> dist(n, std::numeric_limits<float>::infinity());
  if (source >= n) {
    return dist;
  }
  SeqAdjacency adj(graph);
  using Entry = std::pair<float, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  dist[source] = 0.0f;
  heap.push({0.0f, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) {
      continue;
    }
    for (uint64_t i = adj.offsets[u]; i < adj.offsets[u + 1]; ++i) {
      const VertexId v = adj.neighbors[i];
      const float candidate = d + adj.weights[i];
      if (candidate < dist[v]) {
        dist[v] = candidate;
        heap.push({candidate, v});
      }
    }
  }
  return dist;
}

std::vector<VertexId> RefWccLabels(const EdgeList& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> parent(n);
  for (VertexId v = 0; v < n; ++v) {
    parent[v] = v;
  }
  // Union-find with path halving.
  auto find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const Edge& e : graph.edges()) {
    const VertexId a = find(e.src);
    const VertexId b = find(e.dst);
    if (a != b) {
      // Union by smaller id so roots are already canonical-ish.
      if (a < b) {
        parent[b] = a;
      } else {
        parent[a] = b;
      }
    }
  }
  // Canonicalize: label = min id in component == root under id-ordered union.
  std::vector<VertexId> label(n);
  for (VertexId v = 0; v < n; ++v) {
    label[v] = find(v);
  }
  return label;
}

std::vector<float> RefPagerank(const EdgeList& graph, int iterations, float damping) {
  const VertexId n = graph.num_vertices();
  std::vector<float> rank(n, n == 0 ? 0.0f : 1.0f / static_cast<float>(n));
  if (n == 0) {
    return rank;
  }
  std::vector<uint32_t> degree(n, 0);
  for (const Edge& e : graph.edges()) {
    ++degree[e.src];
  }
  std::vector<float> next(n);
  for (int iter = 0; iter < iterations; ++iter) {
    double dangling = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      if (degree[v] == 0) {
        dangling += rank[v];
      }
      next[v] = 0.0f;
    }
    for (const Edge& e : graph.edges()) {
      next[e.dst] += rank[e.src] / static_cast<float>(degree[e.src]);
    }
    const float teleport = (1.0f - damping) / static_cast<float>(n) +
                           damping * static_cast<float>(dangling) / static_cast<float>(n);
    for (VertexId v = 0; v < n; ++v) {
      next[v] = teleport + damping * next[v];
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<float> RefSpmv(const EdgeList& graph, const std::vector<float>& x) {
  std::vector<float> y(graph.num_vertices(), 0.0f);
  for (size_t i = 0; i < graph.edges().size(); ++i) {
    const Edge& e = graph.edges()[i];
    y[e.dst] += graph.EdgeWeight(i) * x[e.src];
  }
  return y;
}

}  // namespace egraph
