#include "src/algos/spmv.h"

#include "src/engine/scan.h"
#include "src/shard/edge_map_sharded.h"
#include "src/util/atomics.h"
#include "src/util/spinlock.h"
#include "src/util/timer.h"

namespace egraph {

SpmvResult RunSpmv(GraphHandle& handle, const std::vector<float>& x, const RunConfig& config,
                   ExecutionContext& ctx) {
  ExecutionContext::Scope exec_scope(ctx);
  PrepareForRun(handle, config);
  SpmvResult result;
  const VertexId n = handle.num_vertices();
  result.y.assign(n, 0.0f);
  float* y = result.y.data();
  const float* xv = x.data();
  StripedLocks& locks = handle.locks();

  Timer total;
  auto add_locked = [&](VertexId src, VertexId dst, float w) {
    SpinlockGuard guard(locks.For(dst));
    y[dst] += w * xv[src];
  };
  auto add_atomic = [&](VertexId src, VertexId dst, float w) { AtomicAdd(&y[dst], w * xv[src]); };
  auto add_plain = [&](VertexId src, VertexId dst, float w) { y[dst] += w * xv[src]; };

  switch (config.layout) {
    case Layout::kAdjacency:
      if (config.direction == Direction::kPull) {
        ScanCsrByDestination(handle.in_csr(),
                             [&](VertexId dst, std::span<const VertexId> sources,
                                 std::span<const float> weights) {
                               float sum = 0.0f;
                               for (size_t j = 0; j < sources.size(); ++j) {
                                 const float w = weights.empty() ? 1.0f : weights[j];
                                 sum += w * xv[sources[j]];
                               }
                               y[dst] = sum;
                             });
      } else if (config.sync == Sync::kLocks) {
        ScanCsrBySource(handle.out_csr(), add_locked);
      } else {
        ScanCsrBySource(handle.out_csr(), add_atomic);
      }
      break;
    case Layout::kCompressed:
      if (config.direction == Direction::kPull) {
        ScanCompressedByDestination(handle.compressed_in(), config.balance,
                                    [&](VertexId dst, auto&& decode) {
                                      float sum = 0.0f;
                                      decode([&](VertexId src, float w) {
                                        sum += w * xv[src];
                                      });
                                      y[dst] = sum;
                                    });
      } else if (config.sync == Sync::kLocks) {
        ScanCompressedBySource(handle.compressed_out(), config.balance, add_locked);
      } else {
        ScanCompressedBySource(handle.compressed_out(), config.balance, add_atomic);
      }
      break;
    case Layout::kEdgeArray:
      if (config.sync == Sync::kLocks) {
        ScanEdgeArray(handle.edges(), add_locked);
      } else {
        ScanEdgeArray(handle.edges(), add_atomic);
      }
      break;
    case Layout::kGrid:
      if (config.sync == Sync::kLockFree) {
        ScanGridColumnOwned(handle.grid(), add_plain);
      } else if (config.sync == Sync::kLocks) {
        ScanGridRowMajor(handle.grid(), add_locked);
      } else {
        ScanGridRowMajor(handle.grid(), add_atomic);
      }
      break;
    case Layout::kSharded:
      if (config.direction == Direction::kPull) {
        ShardScanByDestination(handle.in_csr(), handle.sharded(),
                               [&](VertexId dst, std::span<const VertexId> sources,
                                   std::span<const float> weights) {
                                 float sum = 0.0f;
                                 for (size_t j = 0; j < sources.size(); ++j) {
                                   const float w = weights.empty() ? 1.0f : weights[j];
                                   sum += w * xv[sources[j]];
                                 }
                                 y[dst] = sum;
                               });
      } else {
        // Ownership makes both phases' adds exclusive: plain stores.
        ShardScanBySource(handle.out_csr(), handle.sharded(), add_plain);
      }
      break;
  }
  result.stats.iterations = 1;
  result.stats.algorithm_seconds = total.Seconds();
  result.stats.per_iteration_seconds.push_back(result.stats.algorithm_seconds);
  return result;
}

}  // namespace egraph
