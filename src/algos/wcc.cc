#include "src/algos/wcc.h"

#include "src/engine/edge_map.h"
#include "src/engine/edge_map_compressed.h"
#include "src/engine/scan.h"
#include "src/shard/edge_map_sharded.h"
#include "src/obs/phase.h"
#include "src/obs/trace.h"
#include "src/util/atomics.h"
#include "src/util/timer.h"

namespace egraph {
namespace {

struct WccFunctor {
  VertexId* label;

  bool Update(VertexId src, VertexId dst, float /*weight*/) {
    // dst is exclusively owned; src's label may shrink concurrently, so read
    // it atomically (any stale value is still a member of the component).
    const VertexId src_label = AtomicLoad(&label[src]);
    if (src_label < label[dst]) {
      label[dst] = src_label;
      return true;
    }
    return false;
  }

  bool UpdateAtomic(VertexId src, VertexId dst, float /*weight*/) {
    return AtomicMin(&label[dst], AtomicLoad(&label[src]));
  }

  bool Cond(VertexId /*dst*/) const { return true; }
};

}  // namespace

WccResult RunWcc(GraphHandle& handle, const RunConfig& config, ExecutionContext& ctx) {
  ExecutionContext::Scope exec_scope(ctx);
  PrepareForRun(handle, config);
  WccResult result;
  const VertexId n = handle.num_vertices();
  result.label.resize(n);
  Timer total;
  obs::ScopedPhase phase(obs::Phase::kAlgorithm);
  obs::TraceSession trace(result.stats.trace, "wcc", config.layout, config.direction,
                          config.sync);
  VertexMap(n, [&](VertexId v) { result.label[v] = v; });

  if (config.layout == Layout::kAdjacency || config.layout == Layout::kCompressed ||
      config.layout == Layout::kSharded) {
    // Frontier-driven label propagation over the (symmetrized) adjacency
    // lists — plain, chunk-compressed, or shard-owned: only re-labeled
    // vertices propagate next round.
    const bool compressed = config.layout == Layout::kCompressed;
    const bool sharded = config.layout == Layout::kSharded;
    WccFunctor func{result.label.data()};
    Frontier frontier = Frontier::All(n);
    EdgeMapOptions edge_map;
    edge_map.sync = config.sync;
    edge_map.balance = config.balance;
    edge_map.locks = &handle.locks();
    edge_map.scratch = &ctx.edge_map_scratch();
    while (!frontier.Empty()) {
      Timer iteration;
      result.stats.frontier_sizes.push_back(frontier.Count());
      trace.BeginIteration(frontier.Count(), frontier.has_sparse());
      Direction used = config.direction;
      Frontier next;
      switch (config.direction) {
        case Direction::kPush:
          if (compressed) {
            next = EdgeMapCompressedPush(handle.compressed_out(), frontier, func, edge_map);
          } else if (sharded) {
            next = EdgeMapShardedPush(handle.out_csr(), handle.sharded(), frontier, func,
                                      edge_map);
          } else {
            next = EdgeMapCsrPush(handle.out_csr(), frontier, func, edge_map);
          }
          break;
        case Direction::kPull:
          if (compressed) {
            next = EdgeMapCompressedPull(handle.compressed_in(), frontier, func, edge_map);
          } else if (sharded) {
            next = EdgeMapShardedPull(handle.in_csr(), handle.sharded(), frontier, func,
                                      edge_map);
          } else {
            next = EdgeMapCsrPull(handle.in_csr(), frontier, func, edge_map);
          }
          break;
        case Direction::kPushPull: {
          bool used_pull = false;
          if (compressed) {
            next = EdgeMapCompressedPushPull(handle.compressed_out(), handle.compressed_in(),
                                             frontier, func, edge_map, config.pushpull,
                                             &used_pull);
          } else if (sharded) {
            next = EdgeMapShardedPushPull(handle.out_csr(), handle.in_csr(), handle.sharded(),
                                          frontier, func, edge_map, config.pushpull,
                                          &used_pull);
          } else {
            next = EdgeMapCsrPushPull(handle.out_csr(), handle.in_csr(), frontier, func,
                                      edge_map, config.pushpull, &used_pull);
          }
          result.stats.used_pull.push_back(used_pull);
          used = used_pull ? Direction::kPull : Direction::kPush;
          break;
        }
      }
      frontier = std::move(next);
      trace.EndIteration(used);
      result.stats.per_iteration_seconds.push_back(iteration.Seconds());
      ++result.stats.iterations;
    }
  } else {
    // Edge array / grid: full scans updating *both* endpoints per stored
    // edge (no symmetrization needed), iterated to fixpoint.
    VertexId* label = result.label.data();
    std::atomic<bool> changed{true};
    auto relax = [label, &changed](VertexId a, VertexId b, float /*w*/) {
      const VertexId la = AtomicLoad(&label[a]);
      const VertexId lb = AtomicLoad(&label[b]);
      if (la < lb) {
        if (AtomicMin(&label[b], la)) {
          changed.store(true, std::memory_order_relaxed);
        }
      } else if (lb < la) {
        if (AtomicMin(&label[a], lb)) {
          changed.store(true, std::memory_order_relaxed);
        }
      }
    };
    while (changed.load(std::memory_order_relaxed)) {
      changed.store(false, std::memory_order_relaxed);
      Timer iteration;
      trace.BeginIteration(n, /*frontier_sparse=*/false);
      if (config.layout == Layout::kEdgeArray) {
        ScanEdgeArray(handle.edges(), relax);
      } else {
        ScanGridRowMajor(handle.grid(), config.balance, relax);
      }
      trace.EndIteration(config.direction);
      result.stats.per_iteration_seconds.push_back(iteration.Seconds());
      ++result.stats.iterations;
    }
  }
  result.stats.algorithm_seconds = total.Seconds();
  return result;
}

}  // namespace egraph
