#include "src/algos/triangles.h"

#include <algorithm>
#include <set>
#include <vector>

#include "src/engine/scan.h"
#include "src/util/parallel.h"
#include "src/util/timer.h"

namespace egraph {

TriangleResult RunTriangleCount(GraphHandle& handle, const RunConfig& config,
                                ExecutionContext& ctx) {
  ExecutionContext::Scope exec_scope(ctx);
  RunConfig tc_config = config;
  tc_config.layout = Layout::kAdjacency;
  tc_config.direction = Direction::kPush;
  PrepareForRun(handle, tc_config);

  TriangleResult result;
  const VertexId n = handle.num_vertices();
  const Csr& csr = handle.out_csr();

  Timer total;
  // Rank vertices by (degree, id); orient edges toward higher rank. Each
  // vertex's oriented neighbor list is sorted by id for fast intersection.
  std::vector<uint32_t> degree(n);
  VertexMap(n, [&](VertexId v) { degree[v] = csr.Degree(v); });
  auto rank_less = [&degree](VertexId a, VertexId b) {
    return degree[a] != degree[b] ? degree[a] < degree[b] : a < b;
  };

  std::vector<std::vector<VertexId>> oriented(n);
  ParallelForGrain(0, static_cast<int64_t>(n), /*grain=*/256, [&](int64_t vi) {
    const VertexId v = static_cast<VertexId>(vi);
    auto& list = oriented[static_cast<size_t>(vi)];
    for (const VertexId u : csr.Neighbors(v)) {
      if (rank_less(v, u)) {
        list.push_back(u);
      }
    }
    std::sort(list.begin(), list.end());
  });

  const uint64_t count = ParallelReduceSum<uint64_t>(
      0, static_cast<int64_t>(n), [&](int64_t vi) {
        const auto& vu = oriented[static_cast<size_t>(vi)];
        uint64_t local = 0;
        for (const VertexId u : vu) {
          // Sorted-list intersection |oriented(v) ∩ oriented(u)|.
          const auto& uw = oriented[u];
          size_t a = 0;
          size_t b = 0;
          while (a < vu.size() && b < uw.size()) {
            if (vu[a] < uw[b]) {
              ++a;
            } else if (vu[a] > uw[b]) {
              ++b;
            } else {
              ++local;
              ++a;
              ++b;
            }
          }
        }
        return local;
      });

  result.triangles = count;
  result.stats.iterations = 1;
  result.stats.algorithm_seconds = total.Seconds();
  result.stats.per_iteration_seconds.push_back(result.stats.algorithm_seconds);
  return result;
}

uint64_t RefTriangleCount(const EdgeList& undirected_simple) {
  const VertexId n = undirected_simple.num_vertices();
  std::vector<std::set<VertexId>> adj(n);
  for (const Edge& e : undirected_simple.edges()) {
    if (e.src != e.dst) {
      adj[e.src].insert(e.dst);
    }
  }
  uint64_t count = 0;
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b : adj[a]) {
      if (b <= a) {
        continue;
      }
      for (VertexId c : adj[b]) {
        if (c <= b) {
          continue;
        }
        if (adj[a].count(c) != 0) {
          ++count;
        }
      }
    }
  }
  return count;
}

}  // namespace egraph
