// k-core decomposition by parallel peeling: the core number of a vertex is
// the largest k such that the vertex survives in a subgraph where every
// vertex has degree >= k. A frontier-driven workload with shrinking active
// sets — the same execution profile class as the paper's traversal
// algorithms, included as an extension exercise of the engine.
#ifndef SRC_ALGOS_KCORE_H_
#define SRC_ALGOS_KCORE_H_

#include <vector>

#include "src/algos/common.h"

namespace egraph {

struct KcoreResult {
  std::vector<uint32_t> core;  // core number per vertex
  uint32_t max_core = 0;
  AlgoStats stats;
};

// Computes core numbers over the *undirected* view of the handle's graph:
// the handle must hold a symmetrized edge list (EdgeList::MakeUndirected),
// like WCC on adjacency lists. Runs on the out-CSR.
KcoreResult RunKcore(GraphHandle& handle, const RunConfig& config,
                     ExecutionContext& ctx = ExecutionContext::Default());

// Sequential reference (bucket peeling) for tests. Expects the same
// symmetrized input.
std::vector<uint32_t> RefKcore(const EdgeList& undirected);

}  // namespace egraph

#endif  // SRC_ALGOS_KCORE_H_
