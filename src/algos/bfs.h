// Breadth-first search: builds a parent tree from `source` in breadth-first
// order. The paper's canonical subset-active traversal: per iteration only
// the frontier is processed, which is what makes adjacency lists (and push
// mode) win end-to-end, and what makes NUMA partitioning backfire.
#ifndef SRC_ALGOS_BFS_H_
#define SRC_ALGOS_BFS_H_

#include <vector>

#include "src/algos/common.h"

namespace egraph {

struct BfsResult {
  // parent[v] = predecessor of v in the BFS tree; parent[source] = source;
  // kInvalidVertex for unreachable vertices.
  std::vector<VertexId> parent;
  AlgoStats stats;
};

// Runs BFS under the configuration's layout / direction / sync. Supported
// combinations: adjacency x {push, pull, push-pull}, edge array (full scans),
// grid x {locks, atomics, lock-free ownership}.
BfsResult RunBfs(GraphHandle& handle, VertexId source, const RunConfig& config,
                 ExecutionContext& ctx = ExecutionContext::Default());

}  // namespace egraph

#endif  // SRC_ALGOS_BFS_H_
