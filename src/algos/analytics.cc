#include "src/algos/analytics.h"

#include <limits>

#include "src/algos/triangles.h"
#include "src/engine/edge_map.h"
#include "src/engine/graph_handle.h"
#include "src/engine/scan.h"
#include "src/util/atomics.h"
#include "src/util/parallel.h"

namespace egraph {
namespace {

// Level-labelling BFS functor: discovers each vertex once, stamping the
// current round.
struct LevelFunctor {
  uint32_t* level;
  uint32_t round;
  static constexpr uint32_t kUnreached = std::numeric_limits<uint32_t>::max();

  bool Update(VertexId /*src*/, VertexId dst, float) {
    if (level[dst] == kUnreached) {
      level[dst] = round;
      return true;
    }
    return false;
  }
  bool UpdateAtomic(VertexId /*src*/, VertexId dst, float) {
    return AtomicCas(&level[dst], kUnreached, round);
  }
  bool Cond(VertexId dst) const { return AtomicLoad(&level[dst]) == LevelFunctor::kUnreached; }
};

// BFS over `out`, returning the eccentricity of `source` and a farthest
// vertex (the double-sweep pivot).
std::pair<uint32_t, VertexId> EccentricityAndFarthest(const Csr& out, StripedLocks& locks,
                                                      VertexId source) {
  const VertexId n = out.num_vertices();
  std::vector<uint32_t> level(n, LevelFunctor::kUnreached);
  level[source] = 0;
  LevelFunctor func{level.data(), 0};
  Frontier frontier = Frontier::Single(n, source);
  EdgeMapOptions edge_map;
  edge_map.locks = &locks;
  uint32_t depth = 0;
  VertexId farthest = source;
  while (!frontier.Empty()) {
    func.round = depth + 1;
    Frontier next = EdgeMapCsrPush(out, frontier, func, edge_map);
    if (next.Empty()) {
      // Any member of the last non-empty frontier is farthest.
      frontier.EnsureSparse();
      farthest = frontier.Vertices().front();
      break;
    }
    frontier = std::move(next);
    ++depth;
  }
  return {depth, farthest};
}

}  // namespace

double GlobalClusteringCoefficient(const EdgeList& graph) {
  EdgeList simple = graph.MakeUndirected();
  simple.RemoveSelfLoops();
  simple.RemoveDuplicateEdges();

  GraphHandle handle(simple);
  RunConfig config;
  const uint64_t triangles = RunTriangleCount(handle, config).triangles;

  // Wedges: sum over vertices of deg * (deg - 1) / 2 on the undirected
  // simple graph (degree == out-degree after symmetrization + dedup).
  const Csr& out = handle.out_csr();
  const double wedges = ParallelReduceSum<double>(
      0, static_cast<int64_t>(simple.num_vertices()), [&out](int64_t v) {
        const double d = out.Degree(static_cast<VertexId>(v));
        return d * (d - 1.0) / 2.0;
      });
  if (wedges <= 0.0) {
    return 0.0;
  }
  return 3.0 * static_cast<double>(triangles) / wedges;
}

uint32_t EstimateDiameter(const EdgeList& graph, int sweeps, VertexId seed) {
  if (graph.num_vertices() == 0) {
    return 0;
  }
  GraphHandle handle(graph.MakeUndirected());
  PrepareConfig prepare;
  handle.Prepare(prepare);
  const Csr& out = handle.out_csr();
  if (seed >= handle.num_vertices()) {
    seed = 0;
  }

  uint32_t best = 0;
  VertexId pivot = seed;
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    const auto [eccentricity, farthest] =
        EccentricityAndFarthest(out, handle.locks(), pivot);
    if (eccentricity > best) {
      best = eccentricity;
    }
    if (farthest == pivot) {
      break;  // converged (isolated seed or symmetric ball)
    }
    pivot = farthest;
  }
  return best;
}

}  // namespace egraph
