#include "src/algos/common.h"

namespace egraph {

void PrepareForRun(GraphHandle& handle, const RunConfig& config) {
  PrepareConfig prepare;
  prepare.layout = config.layout;
  prepare.method = config.method;
  prepare.symmetric_input = config.symmetric_input;
  if (config.layout == Layout::kAdjacency || config.layout == Layout::kCompressed ||
      config.layout == Layout::kSharded) {
    prepare.need_out =
        config.direction == Direction::kPush || config.direction == Direction::kPushPull;
    prepare.need_in =
        config.direction == Direction::kPull || config.direction == Direction::kPushPull;
  }
  if (config.layout == Layout::kSharded) {
    prepare.num_shards = config.shards;
  }
  handle.Prepare(prepare);
}

}  // namespace egraph
