// Shared algorithm-run plumbing: the configuration selecting which of the
// paper's techniques to enable, and the per-run statistics every algorithm
// reports (iteration counts, per-iteration times, frontier sizes,
// push/pull decisions).
#ifndef SRC_ALGOS_COMMON_H_
#define SRC_ALGOS_COMMON_H_

#include <cstdint>
#include <vector>

#include "src/engine/execution_context.h"
#include "src/engine/graph_handle.h"
#include "src/engine/options.h"
#include "src/obs/trace.h"

namespace egraph {

struct RunConfig {
  Layout layout = Layout::kAdjacency;
  Direction direction = Direction::kPush;
  Sync sync = Sync::kAtomics;
  // Work partitioning for edge traversals. Edge-balanced is the default:
  // it is never worse than fixed grains on skewed degree distributions and
  // costs one prefix sum per round; kVertex remains for the ablation.
  Balance balance = Balance::kEdge;
  PushPullConfig pushpull;
  // Pre-processing method used when the run has to build a missing layout.
  BuildMethod method = BuildMethod::kRadixSort;
  // The handle's edge list is already symmetric (undirected): pull and
  // push-pull reuse the out-CSR as the in-CSR (paper section 6.1.3).
  bool symmetric_input = false;
  // For kSharded: shard count; 0 lets the handle pick two per worker.
  int shards = 0;
};

struct AlgoStats {
  int iterations = 0;
  double algorithm_seconds = 0.0;
  std::vector<double> per_iteration_seconds;
  std::vector<int64_t> frontier_sizes;  // active vertices entering each round
  std::vector<bool> used_pull;          // push-pull decisions, when applicable
  // Per-iteration engine trace (frontier shape, edges scanned/relaxed,
  // direction actually used); also deposited in obs::TraceSink for export.
  obs::EngineTrace trace;
};

// Builds the layouts `config` needs on `handle` (cost lands in
// handle.preprocess_seconds()). Called by every Run* entry point so that a
// bare handle works out of the box; benches typically Prepare explicitly
// first to control and measure the method. Thread-safe against a frozen
// handle: concurrent callers needing the same layout pay one build between
// them (GraphHandle's per-layout call_once).
//
// Every Run* entry point additionally takes an ExecutionContext& (defaulted
// to ExecutionContext::Default(), so existing call sites are unchanged) and
// opens a context Scope for its duration: the run's parallel loops execute
// on the context's pool, its trace lands in the context's sink, and its
// EdgeMap rounds reuse the context's scratch.
void PrepareForRun(GraphHandle& handle, const RunConfig& config);

}  // namespace egraph

#endif  // SRC_ALGOS_COMMON_H_
