#include "src/algos/kcore.h"

#include <algorithm>

#include "src/engine/scan.h"
#include "src/util/atomics.h"
#include "src/util/timer.h"

namespace egraph {

KcoreResult RunKcore(GraphHandle& handle, const RunConfig& config, ExecutionContext& ctx) {
  ExecutionContext::Scope exec_scope(ctx);
  RunConfig kcore_config = config;
  kcore_config.layout = Layout::kAdjacency;
  kcore_config.direction = Direction::kPush;  // needs the out-CSR
  PrepareForRun(handle, kcore_config);

  KcoreResult result;
  const VertexId n = handle.num_vertices();
  const Csr& csr = handle.out_csr();

  Timer total;
  // Remaining degree of each vertex; decremented as neighbors peel away.
  std::vector<uint32_t> degree(n);
  VertexMap(n, [&](VertexId v) { degree[v] = csr.Degree(v); });
  result.core.assign(n, 0);
  std::vector<uint8_t> removed(n, 0);

  int64_t alive = n;
  uint32_t k = 0;
  while (alive > 0) {
    // Peel all vertices of remaining degree <= k, cascading within level k.
    bool peeled_any = false;
    do {
      Timer iteration;
      const int workers = ThreadPool::Current().num_threads();
      std::vector<std::vector<VertexId>> buffers(static_cast<size_t>(workers));
      ParallelForChunks(0, static_cast<int64_t>(n), /*grain=*/512,
                        [&](int64_t lo, int64_t hi, int worker) {
                          for (int64_t v = lo; v < hi; ++v) {
                            if (AtomicLoad(&removed[static_cast<size_t>(v)]) == 0 &&
                                AtomicLoad(&degree[static_cast<size_t>(v)]) <= k) {
                              buffers[static_cast<size_t>(worker)].push_back(
                                  static_cast<VertexId>(v));
                            }
                          }
                        });
      std::vector<VertexId> frontier;
      for (auto& b : buffers) {
        frontier.insert(frontier.end(), b.begin(), b.end());
      }
      peeled_any = !frontier.empty();
      if (peeled_any) {
        ParallelForGrain(0, static_cast<int64_t>(frontier.size()), /*grain=*/64,
                         [&](int64_t i) {
                           const VertexId v = frontier[static_cast<size_t>(i)];
                           AtomicStore(&removed[v], uint8_t{1});
                           result.core[v] = k;
                           for (const VertexId u : csr.Neighbors(v)) {
                             if (AtomicLoad(&removed[u]) == 0) {
                               // Saturating decrement; benign if it briefly
                               // underestimates (vertex peels this level).
                               reinterpret_cast<std::atomic<uint32_t>*>(&degree[u])
                                   ->fetch_sub(1, std::memory_order_relaxed);
                             }
                           }
                         });
        alive -= static_cast<int64_t>(frontier.size());
        result.stats.frontier_sizes.push_back(static_cast<int64_t>(frontier.size()));
        result.stats.per_iteration_seconds.push_back(iteration.Seconds());
        ++result.stats.iterations;
      }
    } while (peeled_any && alive > 0);
    ++k;
  }
  result.max_core = k == 0 ? 0 : k - 1;
  result.stats.algorithm_seconds = total.Seconds();
  return result;
}

std::vector<uint32_t> RefKcore(const EdgeList& undirected) {
  const VertexId n = undirected.num_vertices();
  std::vector<uint32_t> degree(n, 0);
  for (const Edge& e : undirected.edges()) {
    ++degree[e.src];
  }
  // Bucket peeling (Batagelj-Zaversnik).
  const uint32_t max_degree =
      n == 0 ? 0 : *std::max_element(degree.begin(), degree.end());
  std::vector<std::vector<VertexId>> buckets(max_degree + 1);
  for (VertexId v = 0; v < n; ++v) {
    buckets[degree[v]].push_back(v);
  }
  // Adjacency for peeling.
  std::vector<uint64_t> offsets(static_cast<size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + degree[v];
  }
  std::vector<VertexId> neighbors(offsets[n]);
  {
    std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge& e : undirected.edges()) {
      neighbors[cursor[e.src]++] = e.dst;
    }
  }
  std::vector<uint32_t> core(n, 0);
  std::vector<bool> done(n, false);
  std::vector<uint32_t> remaining = degree;
  for (uint32_t k = 0; k <= max_degree; ++k) {
    for (size_t i = 0; i < buckets[k].size(); ++i) {  // bucket grows in-loop
      const VertexId v = buckets[k][i];
      if (done[v] || remaining[v] > k) {
        continue;  // lazy entry: v was re-enqueued at its true level
      }
      done[v] = true;
      core[v] = k;
      for (uint64_t j = offsets[v]; j < offsets[v + 1]; ++j) {
        const VertexId u = neighbors[j];
        if (!done[u] && remaining[u] > k) {
          --remaining[u];
          // Re-enqueue at the level u will actually peel at (lazy deletion:
          // stale entries in higher buckets are skipped by the guard above).
          buckets[std::max(remaining[u], k)].push_back(u);
        }
      }
    }
  }
  return core;
}

}  // namespace egraph
