// Pagerank (Page et al. 1999) with uniform teleport and dangling-mass
// redistribution, run for a fixed iteration count (the paper uses 10).
// The canonical all-active workload: every edge is processed every round,
// which is where the grid layout's cache blocking and pull-mode lock removal
// pay off (paper sections 5 and 6).
#ifndef SRC_ALGOS_PAGERANK_H_
#define SRC_ALGOS_PAGERANK_H_

#include <vector>

#include "src/algos/common.h"

namespace egraph {

struct PagerankOptions {
  int iterations = 10;
  float damping = 0.85f;
};

struct PagerankResult {
  std::vector<float> rank;  // sums to ~1 across vertices
  AlgoStats stats;
};

// Supported configurations: adjacency push (locks/atomics), adjacency pull
// (lock-free), edge array (locks/atomics), grid row-major (locks/atomics),
// grid column-owned (lock-free).
PagerankResult RunPagerank(GraphHandle& handle, const PagerankOptions& options,
                           const RunConfig& config,
                           ExecutionContext& ctx = ExecutionContext::Default());

}  // namespace egraph

#endif  // SRC_ALGOS_PAGERANK_H_
