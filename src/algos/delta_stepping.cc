#include "src/algos/delta_stepping.h"

#include <cmath>
#include <limits>

#include "src/util/atomics.h"
#include "src/util/bitmap.h"
#include "src/util/parallel.h"
#include "src/util/timer.h"

namespace egraph {

SsspResult RunSsspDeltaStepping(GraphHandle& handle, VertexId source,
                                const DeltaSteppingOptions& options,
                                const RunConfig& config, ExecutionContext& ctx) {
  ExecutionContext::Scope exec_scope(ctx);
  RunConfig ds_config = config;
  ds_config.layout = Layout::kAdjacency;
  ds_config.direction = Direction::kPush;
  PrepareForRun(handle, ds_config);

  SsspResult result;
  const VertexId n = handle.num_vertices();
  result.dist.assign(n, std::numeric_limits<float>::infinity());
  if (source >= n || n == 0) {
    return result;
  }
  const Csr& out = handle.out_csr();

  Timer total;
  float delta = options.delta;
  if (delta <= 0.0f) {
    // Average edge weight (1.0 exactly for unweighted graphs).
    if (out.num_edges() == 0) {
      delta = 1.0f;
    } else {
      const double sum = ParallelReduceSum<double>(
          0, static_cast<int64_t>(out.num_edges()),
          [&out](int64_t e) { return static_cast<double>(out.WeightAt(static_cast<EdgeIndex>(e))); });
      delta = static_cast<float>(sum / static_cast<double>(out.num_edges()));
      if (delta <= 0.0f) {
        delta = 1.0f;
      }
    }
  }

  float* dist = result.dist.data();
  dist[source] = 0.0f;
  const int workers = ThreadPool::Current().num_threads();

  // Relaxes `frontier`'s edges selected by `take_edge`; returns vertices
  // whose distance improved (deduplicated per round).
  auto relax = [&](const std::vector<VertexId>& frontier, auto&& take_edge) {
    std::vector<std::vector<VertexId>> buffers(static_cast<size_t>(workers));
    Bitmap touched(n);
    ParallelForChunks(0, static_cast<int64_t>(frontier.size()), /*grain=*/64,
                      [&](int64_t lo, int64_t hi, int worker) {
                        for (int64_t i = lo; i < hi; ++i) {
                          const VertexId u = frontier[static_cast<size_t>(i)];
                          const auto neighbors = out.Neighbors(u);
                          const auto weights = out.Weights(u);
                          const float du = AtomicLoad(&dist[u]);
                          for (size_t j = 0; j < neighbors.size(); ++j) {
                            const float w = weights.empty() ? 1.0f : weights[j];
                            if (!take_edge(w)) {
                              continue;
                            }
                            const VertexId v = neighbors[j];
                            if (AtomicMin(&dist[v], du + w) && touched.TestAndSet(v)) {
                              buffers[static_cast<size_t>(worker)].push_back(v);
                            }
                          }
                        }
                      });
    std::vector<VertexId> updated;
    for (auto& b : buffers) {
      updated.insert(updated.end(), b.begin(), b.end());
    }
    return updated;
  };

  auto bucket_of = [&](VertexId v) {
    return static_cast<int64_t>(std::floor(AtomicLoad(&dist[v]) / delta));
  };

  std::vector<VertexId> current{source};
  int64_t bucket = 0;
  // Iterate buckets in order; within a bucket, settle light edges to
  // fixpoint, then relax heavy edges once.
  while (true) {
    std::vector<VertexId> settled;  // all vertices processed in this bucket
    while (!current.empty()) {
      settled.insert(settled.end(), current.begin(), current.end());
      std::vector<VertexId> updated =
          relax(current, [&](float w) { return w < delta; });
      // Keep only vertices that (still) fall into this bucket.
      current.clear();
      for (const VertexId v : updated) {
        if (bucket_of(v) <= bucket) {
          current.push_back(v);
        }
      }
    }
    // Heavy edges of everything settled in this bucket, relaxed once.
    relax(settled, [&](float w) { return w >= delta; });

    // Find the next non-empty bucket by scanning distances (simple and
    // correct; a production implementation would maintain bucket lists).
    int64_t next_bucket = std::numeric_limits<int64_t>::max();
    std::vector<int64_t> worker_min(static_cast<size_t>(workers),
                                    std::numeric_limits<int64_t>::max());
    std::vector<std::vector<VertexId>> buffers(static_cast<size_t>(workers));
    ParallelForChunks(0, static_cast<int64_t>(n), /*grain=*/1024,
                      [&](int64_t lo, int64_t hi, int worker) {
                        for (int64_t v = lo; v < hi; ++v) {
                          const float d = dist[static_cast<size_t>(v)];
                          if (std::isinf(d)) {
                            continue;
                          }
                          const int64_t b = static_cast<int64_t>(std::floor(d / delta));
                          if (b > bucket && b < worker_min[static_cast<size_t>(worker)]) {
                            worker_min[static_cast<size_t>(worker)] = b;
                          }
                        }
                      });
    for (const int64_t b : worker_min) {
      next_bucket = std::min(next_bucket, b);
    }
    ++result.stats.iterations;
    if (next_bucket == std::numeric_limits<int64_t>::max()) {
      break;
    }
    bucket = next_bucket;
    // Collect the new bucket's members.
    ParallelForChunks(0, static_cast<int64_t>(n), /*grain=*/1024,
                      [&](int64_t lo, int64_t hi, int worker) {
                        for (int64_t v = lo; v < hi; ++v) {
                          const float d = dist[static_cast<size_t>(v)];
                          if (!std::isinf(d) &&
                              static_cast<int64_t>(std::floor(d / delta)) == bucket) {
                            buffers[static_cast<size_t>(worker)].push_back(
                                static_cast<VertexId>(v));
                          }
                        }
                      });
    current.clear();
    for (auto& b : buffers) {
      current.insert(current.end(), b.begin(), b.end());
    }
  }
  result.stats.algorithm_seconds = total.Seconds();
  return result;
}

}  // namespace egraph
